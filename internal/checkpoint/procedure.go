package checkpoint

import (
	"fmt"
	"time"

	"repro/internal/state"
)

// Async executes the five-step asynchronous checkpoint of §5 on one SE
// instance:
//
//	(1) flag the SE dirty (BeginDirty) — writers divert to the overlay;
//	(2..3) serialise the now-consistent base into nChunks chunks while
//	       processing continues;
//	(4) back the chunks up to the m target nodes in parallel;
//	(5) lock briefly and consolidate the dirty overlay (MergeDirty).
//
// Only step 5 blocks writers, and its cost is proportional to the update
// rate during the checkpoint, not to the state size — the property Fig. 12
// and Fig. 13 measure.
func Async(st state.Store, meta Meta, nChunks int, b *Backup) (Result, error) {
	start := time.Now()
	if err := st.BeginDirty(); err != nil {
		return Result{}, fmt.Errorf("checkpoint: begin dirty: %w", err)
	}
	snapStart := time.Now()
	chunks, err := st.Checkpoint(nChunks)
	snapDur := time.Since(snapStart)
	if err != nil {
		// Leave dirty mode before reporting.
		_, _ = st.MergeDirty()
		return Result{}, fmt.Errorf("checkpoint: serialise: %w", err)
	}
	meta.StoreType = st.Type()
	bytes, err := b.Save(meta, chunks)
	if err != nil {
		_, _ = st.MergeDirty()
		return Result{}, err
	}
	lockStart := time.Now()
	merged, err := st.MergeDirty()
	lockDur := time.Since(lockStart)
	if err != nil {
		return Result{}, fmt.Errorf("checkpoint: merge dirty: %w", err)
	}
	return Result{
		Meta:         meta,
		Bytes:        bytes,
		Duration:     time.Since(start),
		LockTime:     lockDur,
		MergedDirty:  merged,
		SnapshotTime: snapDur,
	}, nil
}

// Sync executes a stop-the-world checkpoint: pause() must halt all
// processing that touches the SE; its returned resume function is called
// after the snapshot is persisted. The entire serialisation and backup time
// counts as lock time, which is why synchronous checkpointing collapses
// with large state (Fig. 12).
func Sync(st state.Store, meta Meta, nChunks int, b *Backup, pause func() (resume func())) (Result, error) {
	start := time.Now()
	resume := pause()
	lockStart := time.Now()
	snapStart := time.Now()
	chunks, err := st.Checkpoint(nChunks)
	snapDur := time.Since(snapStart)
	if err != nil {
		resume()
		return Result{}, fmt.Errorf("checkpoint: serialise: %w", err)
	}
	meta.StoreType = st.Type()
	bytes, err := b.Save(meta, chunks)
	lockDur := time.Since(lockStart)
	resume()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Meta:         meta,
		Bytes:        bytes,
		Duration:     time.Since(start),
		LockTime:     lockDur,
		SnapshotTime: snapDur,
	}, nil
}

// RestoreInstance rebuilds one recovering SE instance from its chunk group
// (Fig. 4 step R2: "the new SE instances reconcile the chunks").
func RestoreInstance(meta Meta, group []state.Chunk) (state.Store, error) {
	st, err := state.New(meta.StoreType)
	if err != nil {
		return nil, err
	}
	if err := st.Restore(group); err != nil {
		return nil, fmt.Errorf("checkpoint: reconcile chunks for %q: %w", meta.SE, err)
	}
	return st, nil
}
