package checkpoint

import (
	"fmt"

	"repro/internal/state"
)

// ChunkStream is the asynchronous checkpoint protocol (Async's steps 1-3
// and 5) reshaped as an iterator: BeginDirty cuts the snapshot, Next
// serialises one bounded chunk at a time from the frozen base, and Close
// merges the dirty overlay back. Writers divert to the overlay for the
// stream's whole lifetime, so the caller should drain and Close promptly —
// but processing never stops while state trickles out, which is what lets
// a snapshot larger than any frame cap leave the node chunk by chunk.
type ChunkStream struct {
	st     state.Store
	iter   state.ChunkIter
	closed bool
}

// StreamAsync opens a streaming checkpoint on one store: the store goes
// dirty and the returned stream serves its frozen base in chunks of at
// most maxBytes (best effort). The caller MUST Close the stream — that is
// step 5, the overlay merge — exactly once, error or not.
func StreamAsync(st state.Store, maxBytes int) (*ChunkStream, error) {
	if err := st.BeginDirty(); err != nil {
		return nil, fmt.Errorf("checkpoint: begin dirty: %w", err)
	}
	iter, err := state.StreamChunks(st, maxBytes)
	if err != nil {
		_, _ = st.MergeDirty()
		return nil, fmt.Errorf("checkpoint: stream: %w", err)
	}
	return &ChunkStream{st: st, iter: iter}, nil
}

// Next returns the next chunk, ok=false at end of stream.
func (s *ChunkStream) Next() (state.Chunk, bool, error) {
	if s.closed {
		return state.Chunk{}, false, fmt.Errorf("checkpoint: stream closed")
	}
	return s.iter.Next()
}

// Close merges the dirty overlay back into the base (Async's step 5).
// Idempotent: only the first call merges.
func (s *ChunkStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if _, err := s.st.MergeDirty(); err != nil {
		return fmt.Errorf("checkpoint: merge dirty: %w", err)
	}
	return nil
}
