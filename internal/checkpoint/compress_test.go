package checkpoint

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/state"
)

// compressibleKV builds a store whose values flate can actually shrink —
// repetitive text, like most real state payloads.
func compressibleKV(n int) *state.KVMap {
	kv := state.NewKVMap()
	filler := strings.Repeat("the quick brown fox ", 8)
	for i := uint64(0); i < uint64(n); i++ {
		kv.Put(i, []byte(fmt.Sprintf("%s#%d", filler, i)))
	}
	return kv
}

// TestCompressedSaveRestoreRoundTrip: with CompressBase on, base chunks
// shrink on disk and the chain (compressed base + raw deltas) still
// restores to identical contents.
func TestCompressedSaveRestoreRoundTrip(t *testing.T) {
	_, raw := newBackupEnv(t, 2, 0)
	_, comp := newBackupEnv(t, 2, 0)
	comp.CompressBase = true

	kv := compressibleKV(300)
	kv.EnableDeltaTracking()
	chunks, err := kv.Checkpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{SE: "kv/0", Epoch: 1, StoreType: state.TypeKVMap}
	rawBytes, err := raw.Save(meta, chunks)
	if err != nil {
		t.Fatal(err)
	}
	compBytes, err := comp.Save(meta, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if compBytes >= rawBytes {
		t.Fatalf("compressed base wrote %d bytes, raw wrote %d", compBytes, rawBytes)
	}
	// The committed chain accounts post-compression bytes: that is what the
	// compaction-ratio policy and the bench records see.
	m, _ := comp.Latest("kv/0")
	if m.Chain[0].Bytes >= rawBytes {
		t.Fatalf("chain records %d bytes, want < %d", m.Chain[0].Bytes, rawBytes)
	}

	// A delta epoch on top stays raw and extends the chain.
	kv.Put(7, []byte("changed"))
	deltas, err := kv.DeltaCheckpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Save(Meta{SE: "kv/0", Epoch: 2, Delta: true, StoreType: state.TypeKVMap}, deltas); err != nil {
		t.Fatal(err)
	}

	sets, meta2, err := comp.Restore("kv/0", 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	var seven []byte
	for _, g := range sets {
		st, err := RestoreInstance(meta2, g)
		if err != nil {
			t.Fatal(err)
		}
		kvp := st.(*state.KVMap)
		total += kvp.NumEntries()
		if v, ok := kvp.Get(7); ok {
			seven = v
		}
	}
	if total != 300 {
		t.Fatalf("restored %d entries, want 300", total)
	}
	if string(seven) != "changed" {
		t.Fatalf("delta on compressed base lost: key 7 = %q", seven)
	}
}

// TestCompressionSkipsSmallAndIncompressible: chunks below compressMinSize
// and chunks flate cannot shrink are stored raw (v1 header), so the v2
// header only ever appears when it pays.
func TestCompressionSkipsSmallAndIncompressible(t *testing.T) {
	cl, b := newBackupEnv(t, 1, 0)
	b.CompressBase = true

	kv := state.NewKVMap()
	kv.Put(1, []byte("tiny"))
	chunks, err := kv.Checkpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Save(Meta{SE: "kv/0", Epoch: 1, StoreType: state.TypeKVMap}, chunks); err != nil {
		t.Fatal(err)
	}
	payload, err := cl.Node(0).Disk.Read(chunkName("kv/0", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if payload[0]&chunkV2Flag != 0 {
		t.Fatalf("small chunk stored with v2 header (byte0 %#x)", payload[0])
	}
	if _, _, err := b.Restore("kv/0", 1); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreV1Chunks: chunk objects written by a pre-compression release
// (9-byte header, no flags) must keep restoring after the format gained the
// v2 header. The chunks are written byte-by-byte by hand so this keeps
// failing if the writer and the v1 layout ever drift together.
func TestRestoreV1Chunks(t *testing.T) {
	cl, b := newBackupEnv(t, 2, 0)
	kv := populatedKV(200)
	chunks, err := kv.Checkpoint(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chunks {
		hdr := []byte{
			byte(c.Type), // v1: no v2 bit, no flags byte
			byte(c.Index >> 24), byte(c.Index >> 16), byte(c.Index >> 8), byte(c.Index),
			byte(c.Of >> 24), byte(c.Of >> 16), byte(c.Of >> 8), byte(c.Of),
		}
		cl.Node(i%2).Disk.Write(chunkName("kv/0", 1, i), append(hdr, c.Data...))
	}
	bufBytes, err := encodeBuffers(nil)
	if err != nil {
		t.Fatal(err)
	}
	cl.Node(0).Disk.Write(bufName("kv/0", 1), bufBytes)
	// Commit the manifest the way a pre-compression release would have.
	b.mu.Lock()
	b.manifests["kv/0"] = Meta{
		SE: "kv/0", Epoch: 1, Chunks: len(chunks), StoreType: state.TypeKVMap,
		Chain: []EpochRef{{Epoch: 1, Chunks: len(chunks)}},
	}
	b.mu.Unlock()

	sets, meta, err := b.Restore("kv/0", 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RestoreInstance(meta, sets[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(*state.KVMap).NumEntries(); got != 200 {
		t.Fatalf("v1 chunks restored %d entries, want 200", got)
	}
}

// TestDecodeChunkRejectsUnknown: v2 chunks with flags this release does not
// know mean a future writer — refuse rather than misparse. Truncated v2
// headers fail the same way.
func TestDecodeChunkRejectsUnknown(t *testing.T) {
	v2 := func(flags byte) []byte {
		h := chunkHeaderV2(state.Chunk{Type: state.TypeKVMap, Of: 1}, flags)
		return append(h[:], 0xab)
	}
	if _, err := decodeChunk(v2(0x02)); err == nil {
		t.Fatal("unknown chunk flag accepted")
	}
	if _, err := decodeChunk(v2(chunkFlagFlate | 0x80)); err == nil {
		t.Fatal("unknown chunk flag combination accepted")
	}
	short := chunkHeaderV2(state.Chunk{Type: state.TypeKVMap, Of: 1}, chunkFlagFlate)
	if _, err := decodeChunk(short[:9]); err == nil {
		t.Fatal("truncated v2 header accepted")
	}
	if _, err := decodeChunk(v2(chunkFlagFlate)); err == nil {
		t.Fatal("garbage flate stream accepted")
	}
}

// TestDecodeBuffersHostile: buffer payloads come off backup disks, but the
// decoder still must not let a corrupt count field size an allocation or
// panic.
func TestDecodeBuffersHostile(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"huge TE count", []byte{0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"huge edge count", []byte{1, 0x02, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"huge item count", []byte{1, 0x02, 1, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"truncated item", []byte{1, 0x02, 1, 1, 0x01}},
		{"trailing bytes", append(mustEncodeBuffers(nil), 0x00)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if out, err := decodeBuffers(tc.buf); err == nil {
				t.Fatalf("hostile buffer payload decoded to %+v", out)
			}
		})
	}
	// And the healthy empty payload still parses.
	out, err := decodeBuffers(mustEncodeBuffers(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty buffers = %+v, %v", out, err)
	}
}

func mustEncodeBuffers(b map[int][][]core.Item) []byte {
	out, err := encodeBuffers(b)
	if err != nil {
		panic(err)
	}
	return out
}
