package checkpoint

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/wire"
)

func init() {
	wire.Register([]byte{})
}

func newBackupEnv(t *testing.T, m int, diskBW int64) (*cluster.Cluster, *Backup) {
	t.Helper()
	cl := cluster.New(m, cluster.Config{DiskWriteBW: diskBW, DiskReadBW: diskBW})
	targets := make([]*cluster.Node, m)
	for i := 0; i < m; i++ {
		targets[i] = cl.Node(i)
	}
	return cl, NewBackup(cl, targets)
}

func populatedKV(n int) *state.KVMap {
	kv := state.NewKVMap()
	for i := uint64(0); i < uint64(n); i++ {
		kv.Put(i, []byte(fmt.Sprintf("value-%d", i)))
	}
	return kv
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	_, b := newBackupEnv(t, 2, 0)
	kv := populatedKV(500)
	chunks, err := kv.Checkpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{
		SE: "kv/0", Epoch: 1, StoreType: state.TypeKVMap,
		Watermarks: map[int]map[uint64]uint64{3: {42: 7}},
	}
	if _, err := b.Save(meta, chunks); err != nil {
		t.Fatal(err)
	}

	got, ok := b.Latest("kv/0")
	if !ok || got.Epoch != 1 || got.Chunks != 4 {
		t.Fatalf("Latest = %+v, %v", got, ok)
	}

	for _, n := range []int{1, 2, 3} {
		sets, meta2, err := b.Restore("kv/0", n)
		if err != nil {
			t.Fatal(err)
		}
		if len(sets) != n {
			t.Fatalf("restore sets = %d, want %d", len(sets), n)
		}
		if meta2.Watermarks[3][42] != 7 {
			t.Fatal("watermarks lost")
		}
		total := 0
		for j, g := range sets {
			st, err := RestoreInstance(meta2, g)
			if err != nil {
				t.Fatal(err)
			}
			kvp := st.(*state.KVMap)
			total += kvp.NumEntries()
			kvp.ForEach(func(k uint64, _ []byte) bool {
				if state.PartitionKey(k, n) != j {
					t.Errorf("key %d restored to wrong instance %d/%d", k, j, n)
					return false
				}
				return true
			})
		}
		if total != 500 {
			t.Fatalf("n=%d restored %d entries, want 500", n, total)
		}
	}
}

func TestRestoreMissing(t *testing.T) {
	_, b := newBackupEnv(t, 1, 0)
	if _, _, err := b.Restore("nope", 1); err == nil {
		t.Fatal("restore of unknown SE should fail")
	}
}

func TestSaveGCsPreviousEpoch(t *testing.T) {
	cl, b := newBackupEnv(t, 2, 0)
	kv := populatedKV(100)
	for epoch := uint64(1); epoch <= 3; epoch++ {
		chunks, _ := kv.Checkpoint(2)
		if _, err := b.Save(Meta{SE: "kv/0", Epoch: epoch, StoreType: state.TypeKVMap}, chunks); err != nil {
			t.Fatal(err)
		}
	}
	// Only the latest epoch's objects should remain on disk.
	for i := 0; i < 2; i++ {
		for _, name := range cl.Node(i).Disk.List() {
			if name != chunkName("kv/0", 3, i) && name != bufName("kv/0", 3) {
				t.Errorf("stale object %q on disk %d", name, i)
			}
		}
	}
}

func TestForget(t *testing.T) {
	cl, b := newBackupEnv(t, 1, 0)
	kv := populatedKV(10)
	chunks, _ := kv.Checkpoint(1)
	if _, err := b.Save(Meta{SE: "kv/0", Epoch: 1, StoreType: state.TypeKVMap}, chunks); err != nil {
		t.Fatal(err)
	}
	b.Forget("kv/0")
	if _, ok := b.Latest("kv/0"); ok {
		t.Fatal("manifest survived Forget")
	}
	if got := len(cl.Node(0).Disk.List()); got != 0 {
		t.Fatalf("%d objects survived Forget", got)
	}
}

func TestBuffersRoundTrip(t *testing.T) {
	_, b := newBackupEnv(t, 1, 0)
	kv := populatedKV(10)
	chunks, _ := kv.Checkpoint(1)
	buffered := map[int][][]core.Item{
		2: {
			{{Origin: 1, Seq: 1, Value: []byte("x")}, {Origin: 1, Seq: 2, Value: []byte("y")}},
			{},
		},
	}
	meta := Meta{SE: "kv/0", Epoch: 1, StoreType: state.TypeKVMap,
		Buffered: buffered, OutSeqs: map[int]uint64{0: 3}}
	if _, err := b.Save(meta, chunks); err != nil {
		t.Fatal(err)
	}
	_, got, err := b.Restore("kv/0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Buffered[2]) != 2 || len(got.Buffered[2][0]) != 2 {
		t.Fatalf("buffers = %+v", got.Buffered)
	}
	if got.Buffered[2][0][1].Seq != 2 || string(got.Buffered[2][0][1].Value.([]byte)) != "y" {
		t.Fatalf("buffer content = %+v", got.Buffered[2][0][1])
	}
	if got.OutSeqs[0] != 3 {
		t.Fatal("out seqs lost")
	}
}

func TestAsyncCheckpointAllowsWritesDuringSnapshot(t *testing.T) {
	_, b := newBackupEnv(t, 2, 0)
	kv := populatedKV(2000)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var writes int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				kv.Put(i%2000, []byte("overwritten"))
				writes++
			}
		}
	}()

	res, err := Async(kv, Meta{SE: "kv/0", Epoch: 1}, 4, b)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Meta.StoreType != state.TypeKVMap {
		t.Fatal("store type not recorded")
	}
	if res.Bytes <= 0 || res.Duration <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if writes == 0 {
		t.Fatal("no concurrent writes happened; test inconclusive")
	}
	// All concurrent writes are preserved in the live store.
	if v, _ := kv.Get(0); string(v) != "overwritten" {
		t.Fatal("concurrent write lost after merge")
	}
	// And the checkpoint is consistent: every value is either the original
	// or absent from dirty interference (no torn entries).
	sets, meta, err := b.Restore("kv/0", 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RestoreInstance(meta, sets[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.NumEntries() != 2000 {
		t.Fatalf("checkpoint entries = %d, want 2000", st.NumEntries())
	}
}

func TestAsyncCheckpointLockTimeSmall(t *testing.T) {
	// With a slow disk, async checkpoint duration is dominated by I/O but
	// lock time stays tiny because only the merge locks the store.
	// The payload is sized so the modelled I/O dominates by a wide margin:
	// the lock-time assertion below compares against Duration/4, and on a
	// loaded 1-core CI box a single scheduler hiccup inside the merge
	// window can cost several ms, so Duration must be well above 40ms.
	_, b := newBackupEnv(t, 1, 2<<20) // 2 MB/s
	kv := populatedKV(12000)          // ~160 KB of payload -> ~80ms of I/O
	res, err := Async(kv, Meta{SE: "kv/0", Epoch: 1}, 2, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration < 10*time.Millisecond {
		t.Fatalf("duration %v suspiciously fast for a slow disk", res.Duration)
	}
	if res.LockTime > res.Duration/4 {
		t.Fatalf("lock time %v should be a small fraction of duration %v", res.LockTime, res.Duration)
	}
}

func TestSyncCheckpointHoldsPause(t *testing.T) {
	_, b := newBackupEnv(t, 1, 2<<20)
	kv := populatedKV(3000)
	paused := false
	resumed := false
	res, err := Sync(kv, Meta{SE: "kv/0", Epoch: 1}, 2, b, func() func() {
		paused = true
		return func() { resumed = true }
	})
	if err != nil {
		t.Fatal(err)
	}
	if !paused || !resumed {
		t.Fatal("pause/resume not driven")
	}
	// Sync lock time covers serialisation + backup: nearly the full run.
	if res.LockTime < res.Duration/2 {
		t.Fatalf("sync lock time %v should dominate duration %v", res.LockTime, res.Duration)
	}
}

func TestAsyncFailsWhenAlreadyDirty(t *testing.T) {
	_, b := newBackupEnv(t, 1, 0)
	kv := populatedKV(10)
	if err := kv.BeginDirty(); err != nil {
		t.Fatal(err)
	}
	if _, err := Async(kv, Meta{SE: "kv/0", Epoch: 1}, 1, b); err == nil {
		t.Fatal("Async on dirty store should fail")
	}
}

func TestSaveWithNoTargets(t *testing.T) {
	cl := cluster.New(0, cluster.Config{})
	b := NewBackup(cl, nil)
	kv := populatedKV(1)
	chunks, _ := kv.Checkpoint(1)
	if _, err := b.Save(Meta{SE: "kv/0", Epoch: 1}, chunks); err == nil {
		t.Fatal("save without targets should fail")
	}
}

func TestChunkCodecRoundTrip(t *testing.T) {
	for _, c := range []state.Chunk{
		{Type: state.TypeMatrix, Index: 3, Of: 9, Data: []byte{1, 2, 3}},
		{Type: state.TypeKVMap, Index: 1, Of: 4, Delta: true, Data: []byte{7}},
	} {
		hdr := chunkHeader(c)
		got, err := decodeChunk(append(hdr[:], c.Data...))
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != c.Type || got.Index != c.Index || got.Of != c.Of ||
			got.Delta != c.Delta || string(got.Data) != string(c.Data) {
			t.Fatalf("round trip = %+v, want %+v", got, c)
		}
	}
	if _, err := decodeChunk([]byte{1}); err == nil {
		t.Fatal("short payload should fail")
	}
}

func TestModeString(t *testing.T) {
	if ModeOff.String() != "off" || ModeAsync.String() != "async" || ModeSync.String() != "sync" {
		t.Fatal("mode strings")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestMToNRecoveryTimeShape(t *testing.T) {
	// Fig. 11's headline: 2-to-2 recovery beats 1-to-1 because both disk
	// reads and reconstruction parallelise. With a bandwidth-limited disk,
	// restoring via 2 backup disks into 2 instances must be faster than one
	// disk into one instance.
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	mkState := func() *state.KVMap {
		kv := state.NewKVMap()
		for i := uint64(0); i < 3000; i++ {
			kv.Put(i, make([]byte, 256))
		}
		return kv
	}
	measure := func(m, n int) time.Duration {
		_, b := newBackupEnv(t, m, 4<<20) // 4 MB/s disks
		kv := mkState()
		chunks, err := kv.Checkpoint(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Save(Meta{SE: "kv/0", Epoch: 1, StoreType: state.TypeKVMap}, chunks); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		sets, meta, err := b.Restore("kv/0", n)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for _, g := range sets {
			wg.Add(1)
			go func(g RestoreSet) {
				defer wg.Done()
				if _, err := RestoreInstance(meta, g); err != nil {
					t.Error(err)
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start)
	}
	t11 := measure(1, 1)
	t22 := measure(2, 2)
	if t22 >= t11 {
		t.Errorf("2-to-2 recovery (%v) should beat 1-to-1 (%v)", t22, t11)
	}
}

// TestAsyncShardedCrossRestore runs the full §5 async protocol over the
// lock-striped store — dirty cut, shard-parallel serialisation with writes
// landing in the overlay, backup, merge — and then restores the checkpoint
// through the m-to-n path into the single-lock store, proving the two
// dictionary backends are interchangeable across the whole substrate.
func TestAsyncShardedCrossRestore(t *testing.T) {
	_, b := newBackupEnv(t, 2, 0)
	kv := state.NewShardedKVMap(8)
	for i := uint64(0); i < 500; i++ {
		kv.Put(i, []byte(fmt.Sprintf("value-%d", i)))
	}
	res, err := Async(kv, Meta{SE: "kv/0", Epoch: 1}, 4, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Meta.StoreType != state.TypeShardedKVMap {
		t.Fatalf("meta store type = %v", res.Meta.StoreType)
	}
	// Post-checkpoint mutations must not appear in the restored snapshot.
	kv.Put(1000, []byte("late"))

	for _, n := range []int{1, 3} {
		sets, meta, err := b.Restore("kv/0", n)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for j, g := range sets {
			r := state.NewKVMap()
			if err := r.Restore(g.Base); err != nil {
				t.Fatal(err)
			}
			total += r.NumEntries()
			r.ForEach(func(k uint64, _ []byte) bool {
				if state.PartitionKey(k, n) != j {
					t.Errorf("key %d restored to wrong instance %d/%d", k, j, n)
					return false
				}
				return true
			})
			if _, ok := r.Get(1000); ok {
				t.Error("post-checkpoint write leaked into the snapshot")
			}
		}
		if total != 500 {
			t.Fatalf("n=%d restored %d entries, want 500", n, total)
		}
		// RestoreInstance rebuilds via meta.StoreType: a sharded store.
		st, err := RestoreInstance(meta, sets[0])
		if err != nil {
			t.Fatal(err)
		}
		if st.Type() != state.TypeShardedKVMap {
			t.Fatalf("RestoreInstance type = %v", st.Type())
		}
	}

	// And the reverse direction: a single-lock checkpoint restores into the
	// sharded store.
	plain := populatedKV(300)
	chunks, err := plain.Checkpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Save(Meta{SE: "kv/1", Epoch: 1, StoreType: state.TypeKVMap}, chunks); err != nil {
		t.Fatal(err)
	}
	sets2, _, err := b.Restore("kv/1", 1)
	if err != nil {
		t.Fatal(err)
	}
	sh := state.NewShardedKVMap(4)
	if err := sh.Restore(sets2[0].Base); err != nil {
		t.Fatal(err)
	}
	if got := sh.NumEntries(); got != 300 {
		t.Fatalf("sharded restore entries = %d, want 300", got)
	}
}
