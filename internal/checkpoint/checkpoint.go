// Package checkpoint implements the failure-recovery substrate of §5:
// asynchronous local checkpoints with dirty state, synchronous
// (stop-the-world) checkpoints for the baseline comparison, and the m-to-n
// parallel backup/restore protocol of Fig. 4.
//
// A checkpoint of one SE instance consists of hash-partitioned chunks
// (produced by the state package — shard-parallel when the SE is backed by
// a ShardedKVMap), the instance's output buffers, and the vector of input
// watermarks at snapshot time. Chunks are streamed to m backup nodes
// round-robin and written to their simulated disks; at restore time each
// backup chunk is split n ways so n recovering instances rebuild in
// parallel. Dictionary chunks use one wire format regardless of backend,
// so sharded and single-lock checkpoints restore into either store.
//
// Epochs form chains: a full (base) checkpoint starts a chain, and delta
// checkpoints — carrying only the keys changed since the previous epoch —
// append to it. The manifest records the chain, Restore fetches base +
// deltas and replays them per recovering instance, and a superseded chain
// is freed only after the next base commit lands, so a crash mid-save never
// leaves the instance without a restorable checkpoint.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/state"
)

// Mode selects the fault-tolerance strategy.
type Mode int

const (
	// ModeOff disables checkpointing (the paper's "No FT" configuration).
	ModeOff Mode = iota
	// ModeAsync is the paper's contribution: dirty-state checkpoints that
	// let processing continue while the snapshot is serialised.
	ModeAsync
	// ModeSync stops processing for the duration of the checkpoint, as
	// Naiad and SEEP do; used by the baselines and Fig. 12.
	ModeSync
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAsync:
		return "async"
	case ModeSync:
		return "sync"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// EpochRef names one committed epoch of a chain: its number, how many
// chunks it wrote, their total payload bytes, and whether it is a delta.
type EpochRef struct {
	Epoch  uint64
	Chunks int
	Bytes  int64
	Delta  bool
}

// Meta describes one committed checkpoint of one SE instance. The
// per-TE maps cover the TE instances colocated with the SE instance (the
// ones whose processing mutates it): their input watermark vectors, output
// sequence counters and output buffers all ride with the snapshot so a
// restored node resumes log-based recovery exactly where the snapshot was
// taken (§5).
type Meta struct {
	SE        string          // SE instance identity, e.g. "coOcc/1"
	Epoch     uint64          // monotonically increasing per instance
	Chunks    int             // number of chunks written by this epoch
	Delta     bool            // this epoch is an incremental delta
	StoreType state.StoreType // for reconstruction
	// Chain is the epoch chain needed to rebuild the state: the base epoch
	// followed by the committed delta epochs in apply order. Save fills it
	// on commit; a full checkpoint's chain is just its own epoch.
	Chain      []EpochRef
	Watermarks map[int]map[uint64]uint64 // TE id -> origin -> last seq
	OutSeqs    map[int]uint64            // TE id -> output seq counter
	Buffered   map[int][][]core.Item     // TE id -> per-out-edge buffers
}

// Result reports the cost of taking one checkpoint. Whether the epoch was
// incremental is recorded in Meta.Delta.
type Result struct {
	Meta         Meta
	Bytes        int64         // chunk payload written to backup disks
	StateBytes   int64         // approximate in-memory state size at snapshot time
	Duration     time.Duration // wall time for the whole procedure
	LockTime     time.Duration // time the SE was locked (merge for async)
	MergedDirty  int           // dirty entries consolidated (async only)
	SnapshotTime time.Duration // serialisation time
}

// Policy selects between full and delta epochs and bounds chain growth.
// The zero value (Delta false) always takes full checkpoints.
type Policy struct {
	// Delta enables incremental epochs for stores that track changed keys.
	Delta bool
	// CompactEvery forces a new base after this many consecutive deltas
	// (default 8). Longer chains write fewer bytes but lengthen recovery.
	CompactEvery int
	// CompactRatio forces a new base once the chain's cumulative delta
	// bytes exceed this fraction of the base's bytes (default 0.5): past
	// that point replay cost approaches a fresh base's write cost.
	CompactRatio float64
}

func (p Policy) withDefaults() Policy {
	if p.CompactEvery <= 0 {
		p.CompactEvery = 8
	}
	if p.CompactRatio <= 0 {
		p.CompactRatio = 0.5
	}
	return p
}

// Backup is the checkpoint store: it spreads chunks over m backup nodes and
// keeps the manifest of the latest committed checkpoint chain per SE
// instance. The manifest plays the role of cluster metadata that survives
// worker failures.
type Backup struct {
	cl      *cluster.Cluster
	targets []*cluster.Node

	mu        sync.Mutex
	manifests map[string]Meta
}

// NewBackup creates a backup store over the given target nodes (m = number
// of targets).
func NewBackup(cl *cluster.Cluster, targets []*cluster.Node) *Backup {
	return &Backup{cl: cl, targets: targets, manifests: make(map[string]Meta)}
}

// Targets reports the number of backup nodes (m).
func (b *Backup) Targets() int { return len(b.targets) }

func chunkName(se string, epoch uint64, idx int) string {
	return fmt.Sprintf("ckpt/%s/%d/%d", se, epoch, idx)
}

func bufName(se string, epoch uint64) string {
	return fmt.Sprintf("ckpt/%s/%d/buffers", se, epoch)
}

// ioPool sizes the bounded worker pool for chunk transfers: enough workers
// to keep every backup disk busy and exploit the cores, but bounded so an
// epoch with hundreds of chunks does not fan out hundreds of goroutines
// (which also destabilises LockTime/Duration accounting on small machines).
func ioPool(jobs, targets int) int {
	w := 2 * goruntime.GOMAXPROCS(0)
	if w < targets {
		w = targets // one in-flight transfer per backup disk minimum
	}
	if w < 2 {
		w = 2
	}
	if w > 32 {
		w = 32
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// runBounded executes fn(0..n-1) on at most workers goroutines.
func runBounded(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Save streams the chunks to the backup nodes (Fig. 4 steps B2-B3: a
// bounded pool of workers streams chunks round-robin across the m targets)
// and commits the manifest. A delta epoch appends to the existing chain; a
// base epoch starts a new chain and frees the superseded one only after
// the new manifest is committed. It reports the payload bytes written.
//
// Delta epochs are validated against the chain before anything touches a
// disk, so an aborted delta save leaves no partial epoch behind.
func (b *Backup) Save(meta Meta, chunks []state.Chunk) (int64, error) {
	if len(b.targets) == 0 {
		return 0, fmt.Errorf("checkpoint: no backup targets")
	}
	b.mu.Lock()
	prev, had := b.manifests[meta.SE]
	b.mu.Unlock()
	if meta.Delta {
		if !had || len(prev.Chain) == 0 {
			return 0, fmt.Errorf("checkpoint: delta epoch %d of %q has no base chain", meta.Epoch, meta.SE)
		}
		if tip := prev.Chain[len(prev.Chain)-1].Epoch; meta.Epoch <= tip {
			return 0, fmt.Errorf("checkpoint: delta epoch %d of %q does not extend chain tip %d", meta.Epoch, meta.SE, tip)
		}
	}
	bufBytes, err := encodeBuffers(meta.Buffered)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: encode buffers: %w", err)
	}
	var chunkBytes int64
	for _, c := range chunks {
		chunkBytes += int64(len(c.Data))
	}
	runBounded(len(chunks), ioPool(len(chunks), len(b.targets)), func(i int) {
		c := chunks[i]
		target := b.targets[i%len(b.targets)]
		hdr := chunkHeader(c)
		b.cl.Transfer(int64(len(hdr)) + int64(len(c.Data)))
		// The 9-byte header is written as a separate part so the payload is
		// never re-copied into a fresh header+data slice.
		target.Disk.WriteParts(chunkName(meta.SE, meta.Epoch, i), hdr[:], c.Data)
	})
	// Output buffers ride with the first target.
	b.cl.Transfer(int64(len(bufBytes)))
	b.targets[0].Disk.Write(bufName(meta.SE, meta.Epoch), bufBytes)
	total := chunkBytes + int64(len(bufBytes))

	// Commit the manifest under one critical section: the chain is rebuilt
	// from the manifest as it is *now*, so a Save that raced another commit
	// for the same SE cannot silently drop an epoch from the chain. (The
	// store-level dirty flag serialises checkpoints per instance, so the
	// race is unreachable through the runtime; Backup is a public API.)
	meta.Chunks = len(chunks)
	ref := EpochRef{Epoch: meta.Epoch, Chunks: len(chunks), Bytes: chunkBytes, Delta: meta.Delta}
	b.mu.Lock()
	cur, curHad := b.manifests[meta.SE]
	if meta.Delta {
		if !curHad || len(cur.Chain) == 0 || cur.Chain[len(cur.Chain)-1].Epoch != prev.Chain[len(prev.Chain)-1].Epoch {
			// The chain moved under us between validation and commit.
			b.mu.Unlock()
			b.deleteEpoch(meta.SE, ref)
			b.targets[0].Disk.Delete(bufName(meta.SE, meta.Epoch))
			return 0, fmt.Errorf("checkpoint: chain of %q advanced during delta save of epoch %d", meta.SE, meta.Epoch)
		}
		meta.Chain = append(append([]EpochRef(nil), cur.Chain...), ref)
	} else {
		meta.Chain = []EpochRef{ref}
	}
	b.manifests[meta.SE] = meta
	b.mu.Unlock()
	if curHad {
		if meta.Delta {
			// The chain lives on; only the previous epoch's buffer object is
			// superseded (restores read buffers from the chain tip).
			if cur.Epoch != meta.Epoch {
				b.targets[0].Disk.Delete(bufName(meta.SE, cur.Epoch))
			}
		} else {
			// New base committed: the whole previous chain is now free.
			b.gcChain(cur, ref)
		}
	}
	return total, nil
}

// deleteEpoch removes one epoch's chunk objects.
func (b *Backup) deleteEpoch(se string, ref EpochRef) {
	for i := 0; i < ref.Chunks; i++ {
		b.targets[i%len(b.targets)].Disk.Delete(chunkName(se, ref.Epoch, i))
	}
}

// gcChain deletes every chunk object of a superseded chain plus its tip
// buffer object. Called only after the superseding manifest is committed
// (or the SE is forgotten), never mid-chain. An old epoch colliding with
// keep.Epoch is mostly preserved: an instance rebuilt by scaling restarts
// its epoch counter, so a fresh base can reuse an epoch number the old
// chain also used — its first keep.Chunks objects were just overwritten by
// the new epoch, and only the old epoch's excess chunks are freed.
func (b *Backup) gcChain(old Meta, keep EpochRef) {
	refs := old.Chain
	if len(refs) == 0 {
		// Pre-chain manifest (constructed by hand): fall back to the epoch.
		refs = []EpochRef{{Epoch: old.Epoch, Chunks: old.Chunks}}
	}
	for _, ref := range refs {
		if keep.Epoch != 0 && ref.Epoch == keep.Epoch {
			for i := keep.Chunks; i < ref.Chunks; i++ {
				b.targets[i%len(b.targets)].Disk.Delete(chunkName(old.SE, ref.Epoch, i))
			}
			continue
		}
		b.deleteEpoch(old.SE, ref)
	}
	if old.Epoch != keep.Epoch {
		b.targets[0].Disk.Delete(bufName(old.SE, old.Epoch))
	}
}

// Latest returns the manifest of the newest committed checkpoint of the SE
// instance.
func (b *Backup) Latest(se string) (Meta, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.manifests[se]
	return m, ok
}

// ShouldDelta reports whether the next epoch of the SE instance may be
// incremental under the policy: a chain must exist, and neither compaction
// trigger (delta count, cumulative delta bytes) may have fired.
func (b *Backup) ShouldDelta(se string, p Policy) bool {
	if !p.Delta {
		return false
	}
	p = p.withDefaults()
	m, ok := b.Latest(se)
	if !ok || len(m.Chain) == 0 || m.Chain[0].Delta {
		return false
	}
	deltas := m.Chain[1:]
	if len(deltas) >= p.CompactEvery {
		return false
	}
	var deltaBytes int64
	for _, d := range deltas {
		deltaBytes += d.Bytes
	}
	return float64(deltaBytes) < p.CompactRatio*float64(m.Chain[0].Bytes)
}

// RestoreSet holds the ordered chunk groups one recovering instance
// applies: the base epoch's chunks first, then each delta epoch's chunks in
// chain order.
type RestoreSet struct {
	Base   []state.Chunk
	Deltas [][]state.Chunk
}

// Restore implements the n-way parallel restore (Fig. 4 steps R1-R2) over
// a whole epoch chain: every chunk of every chain epoch is read from its
// disk, split into n partitions, and the partitions are grouped per
// recovering instance with base and delta epochs kept apart so each
// instance replays them in order. sets[j] holds the groups for recovering
// instance j. Reads and splits run on a bounded worker pool.
func (b *Backup) Restore(se string, n int) (sets []RestoreSet, meta Meta, err error) {
	meta, ok := b.Latest(se)
	if !ok {
		return nil, Meta{}, fmt.Errorf("checkpoint: no checkpoint for %q", se)
	}
	if n < 1 {
		return nil, Meta{}, state.ErrBadSplit
	}
	chain := meta.Chain
	if len(chain) == 0 {
		chain = []EpochRef{{Epoch: meta.Epoch, Chunks: meta.Chunks}}
	}
	sets = make([]RestoreSet, n)
	for j := range sets {
		sets[j].Deltas = make([][]state.Chunk, len(chain)-1)
	}
	// Flatten the chain into (epoch index, chunk index) jobs.
	type job struct{ ei, ci int }
	var jobs []job
	for ei, ref := range chain {
		for ci := 0; ci < ref.Chunks; ci++ {
			jobs = append(jobs, job{ei, ci})
		}
	}
	var mu sync.Mutex
	errs := make([]error, len(jobs))
	runBounded(len(jobs), ioPool(len(jobs), len(b.targets)), func(idx int) {
		j := jobs[idx]
		ref := chain[j.ei]
		target := b.targets[j.ci%len(b.targets)]
		payload, err := target.Disk.Read(chunkName(se, ref.Epoch, j.ci))
		if err != nil {
			errs[idx] = err
			return
		}
		b.cl.Transfer(int64(len(payload)))
		c, err := decodeChunk(payload)
		if err != nil {
			errs[idx] = err
			return
		}
		parts, err := state.SplitChunk(c, n)
		if err != nil {
			errs[idx] = err
			return
		}
		mu.Lock()
		for g, p := range parts {
			if j.ei == 0 {
				sets[g].Base = append(sets[g].Base, p)
			} else {
				sets[g].Deltas[j.ei-1] = append(sets[g].Deltas[j.ei-1], p)
			}
		}
		mu.Unlock()
	})
	for _, e := range errs {
		if e != nil {
			return nil, Meta{}, fmt.Errorf("checkpoint: restore %q: %w", se, e)
		}
	}
	// Recover buffered output items from the chain tip.
	bufPayload, err := b.targets[0].Disk.Read(bufName(se, meta.Epoch))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("checkpoint: restore buffers for %q: %w", se, err)
	}
	b.cl.Transfer(int64(len(bufPayload)))
	buffered, err := decodeBuffers(bufPayload)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("checkpoint: decode buffers for %q: %w", se, err)
	}
	meta.Buffered = buffered
	return sets, meta, nil
}

// Forget drops the manifest and the stored chain for an SE instance.
func (b *Backup) Forget(se string) {
	b.mu.Lock()
	meta, ok := b.manifests[se]
	delete(b.manifests, se)
	b.mu.Unlock()
	if ok {
		b.gcChain(meta, EpochRef{})
	}
}

// Chunk wire format on backup disks: a 9-byte header — store type (with the
// high bit marking a delta chunk), index, of — followed by the chunk data.
// The header is written as a separate disk part so the payload never needs
// to be copied into a contiguous header+data slice.
const chunkDeltaFlag = 0x80

func chunkHeader(c state.Chunk) [9]byte {
	var h [9]byte
	t := byte(c.Type)
	if c.Delta {
		t |= chunkDeltaFlag
	}
	h[0] = t
	h[1] = byte(c.Index >> 24)
	h[2] = byte(c.Index >> 16)
	h[3] = byte(c.Index >> 8)
	h[4] = byte(c.Index)
	h[5] = byte(c.Of >> 24)
	h[6] = byte(c.Of >> 16)
	h[7] = byte(c.Of >> 8)
	h[8] = byte(c.Of)
	return h
}

func decodeChunk(payload []byte) (state.Chunk, error) {
	if len(payload) < 9 {
		return state.Chunk{}, state.ErrBadChunk
	}
	return state.Chunk{
		Type:  state.StoreType(payload[0] &^ chunkDeltaFlag),
		Delta: payload[0]&chunkDeltaFlag != 0,
		Index: int(payload[1])<<24 | int(payload[2])<<16 | int(payload[3])<<8 | int(payload[4]),
		Of:    int(payload[5])<<24 | int(payload[6])<<16 | int(payload[7])<<8 | int(payload[8]),
		Data:  payload[9:],
	}, nil
}

// Output buffers are gob-encoded; applications must gob.Register their
// payload types (the runtime does so for the built-in applications).
func encodeBuffers(buffered map[int][][]core.Item) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(buffered); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeBuffers(payload []byte) (map[int][][]core.Item, error) {
	var out map[int][][]core.Item
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
