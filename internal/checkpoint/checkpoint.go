// Package checkpoint implements the failure-recovery substrate of §5:
// asynchronous local checkpoints with dirty state, synchronous
// (stop-the-world) checkpoints for the baseline comparison, and the m-to-n
// parallel backup/restore protocol of Fig. 4.
//
// A checkpoint of one SE instance consists of hash-partitioned chunks
// (produced by the state package — shard-parallel when the SE is backed by
// a ShardedKVMap), the instance's output buffers, and the vector of input
// watermarks at snapshot time. Chunks are streamed to m backup nodes
// round-robin and written to their simulated disks; at restore time each
// backup chunk is split n ways so n recovering instances rebuild in
// parallel. Dictionary chunks use one wire format regardless of backend,
// so sharded and single-lock checkpoints restore into either store.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/state"
)

// Mode selects the fault-tolerance strategy.
type Mode int

const (
	// ModeOff disables checkpointing (the paper's "No FT" configuration).
	ModeOff Mode = iota
	// ModeAsync is the paper's contribution: dirty-state checkpoints that
	// let processing continue while the snapshot is serialised.
	ModeAsync
	// ModeSync stops processing for the duration of the checkpoint, as
	// Naiad and SEEP do; used by the baselines and Fig. 12.
	ModeSync
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAsync:
		return "async"
	case ModeSync:
		return "sync"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Meta describes one committed checkpoint of one SE instance. The
// per-TE maps cover the TE instances colocated with the SE instance (the
// ones whose processing mutates it): their input watermark vectors, output
// sequence counters and output buffers all ride with the snapshot so a
// restored node resumes log-based recovery exactly where the snapshot was
// taken (§5).
type Meta struct {
	SE         string                    // SE instance identity, e.g. "coOcc/1"
	Epoch      uint64                    // monotonically increasing per instance
	Chunks     int                       // number of chunks written
	StoreType  state.StoreType           // for reconstruction
	Watermarks map[int]map[uint64]uint64 // TE id -> origin -> last seq
	OutSeqs    map[int]uint64            // TE id -> output seq counter
	Buffered   map[int][][]core.Item     // TE id -> per-out-edge buffers
}

// Result reports the cost of taking one checkpoint.
type Result struct {
	Meta         Meta
	Bytes        int64         // chunk payload written to backup disks
	Duration     time.Duration // wall time for the whole procedure
	LockTime     time.Duration // time the SE was locked (merge for async)
	MergedDirty  int           // dirty entries consolidated (async only)
	SnapshotTime time.Duration // serialisation time
}

// Backup is the checkpoint store: it spreads chunks over m backup nodes and
// keeps the manifest of the latest committed checkpoint per SE instance.
// The manifest plays the role of cluster metadata that survives worker
// failures.
type Backup struct {
	cl      *cluster.Cluster
	targets []*cluster.Node

	mu        sync.Mutex
	manifests map[string]Meta
}

// NewBackup creates a backup store over the given target nodes (m = number
// of targets).
func NewBackup(cl *cluster.Cluster, targets []*cluster.Node) *Backup {
	return &Backup{cl: cl, targets: targets, manifests: make(map[string]Meta)}
}

// Targets reports the number of backup nodes (m).
func (b *Backup) Targets() int { return len(b.targets) }

func chunkName(se string, epoch uint64, idx int) string {
	return fmt.Sprintf("ckpt/%s/%d/%d", se, epoch, idx)
}

func bufName(se string, epoch uint64) string {
	return fmt.Sprintf("ckpt/%s/%d/buffers", se, epoch)
}

// Save streams the chunks to the backup nodes in parallel (Fig. 4 steps
// B2-B3: a pool of goroutines serialises and streams chunk groups
// round-robin across the m targets) and commits the manifest. It reports
// the number of payload bytes written.
func (b *Backup) Save(meta Meta, chunks []state.Chunk) (int64, error) {
	if len(b.targets) == 0 {
		return 0, fmt.Errorf("checkpoint: no backup targets")
	}
	bufBytes, err := encodeBuffers(meta.Buffered)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: encode buffers: %w", err)
	}
	var total int64
	var wg sync.WaitGroup
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c state.Chunk) {
			defer wg.Done()
			target := b.targets[i%len(b.targets)]
			payload := encodeChunk(c)
			b.cl.Transfer(int64(len(payload)))
			target.Disk.Write(chunkName(meta.SE, meta.Epoch, i), payload)
		}(i, c)
		total += int64(len(c.Data))
	}
	wg.Wait()
	// Output buffers ride with the first target.
	b.cl.Transfer(int64(len(bufBytes)))
	b.targets[0].Disk.Write(bufName(meta.SE, meta.Epoch), bufBytes)
	total += int64(len(bufBytes))

	meta.Chunks = len(chunks)
	b.mu.Lock()
	prev, had := b.manifests[meta.SE]
	b.manifests[meta.SE] = meta
	b.mu.Unlock()
	// Old epochs are superseded; free their space.
	if had && prev.Epoch != meta.Epoch {
		b.gc(prev)
	}
	return total, nil
}

func (b *Backup) gc(old Meta) {
	for i := 0; i < old.Chunks; i++ {
		b.targets[i%len(b.targets)].Disk.Delete(chunkName(old.SE, old.Epoch, i))
	}
	b.targets[0].Disk.Delete(bufName(old.SE, old.Epoch))
}

// Latest returns the manifest of the newest committed checkpoint of the SE
// instance.
func (b *Backup) Latest(se string) (Meta, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.manifests[se]
	return m, ok
}

// Restore implements the n-way parallel restore (Fig. 4 steps R1-R2): each
// backup chunk is read from its disk, split into n partitions, and the
// partitions are grouped per recovering instance. groups[j] holds the
// chunks for recovering instance j. The reads and splits across backup
// targets run in parallel.
func (b *Backup) Restore(se string, n int) (groups [][]state.Chunk, meta Meta, err error) {
	meta, ok := b.Latest(se)
	if !ok {
		return nil, Meta{}, fmt.Errorf("checkpoint: no checkpoint for %q", se)
	}
	if n < 1 {
		return nil, Meta{}, state.ErrBadSplit
	}
	groups = make([][]state.Chunk, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, meta.Chunks)
	for i := 0; i < meta.Chunks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := b.targets[i%len(b.targets)]
			payload, err := target.Disk.Read(chunkName(se, meta.Epoch, i))
			if err != nil {
				errs[i] = err
				return
			}
			b.cl.Transfer(int64(len(payload)))
			c, err := decodeChunk(payload)
			if err != nil {
				errs[i] = err
				return
			}
			parts, err := state.SplitChunk(c, n)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			for j, p := range parts {
				groups[j] = append(groups[j], p)
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, Meta{}, fmt.Errorf("checkpoint: restore %q: %w", se, e)
		}
	}
	// Recover buffered output items.
	bufPayload, err := b.targets[0].Disk.Read(bufName(se, meta.Epoch))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("checkpoint: restore buffers for %q: %w", se, err)
	}
	b.cl.Transfer(int64(len(bufPayload)))
	buffered, err := decodeBuffers(bufPayload)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("checkpoint: decode buffers for %q: %w", se, err)
	}
	meta.Buffered = buffered
	return groups, meta, nil
}

// Forget drops the manifest and stored chunks for an SE instance.
func (b *Backup) Forget(se string) {
	b.mu.Lock()
	meta, ok := b.manifests[se]
	delete(b.manifests, se)
	b.mu.Unlock()
	if ok {
		b.gc(meta)
	}
}

// Chunk wire format on backup disks: store type, index, of, then data.
func encodeChunk(c state.Chunk) []byte {
	out := make([]byte, 0, len(c.Data)+16)
	out = append(out, byte(c.Type))
	var hdr [8]byte
	hdr[0] = byte(c.Index >> 24)
	hdr[1] = byte(c.Index >> 16)
	hdr[2] = byte(c.Index >> 8)
	hdr[3] = byte(c.Index)
	hdr[4] = byte(c.Of >> 24)
	hdr[5] = byte(c.Of >> 16)
	hdr[6] = byte(c.Of >> 8)
	hdr[7] = byte(c.Of)
	out = append(out, hdr[:]...)
	out = append(out, c.Data...)
	return out
}

func decodeChunk(payload []byte) (state.Chunk, error) {
	if len(payload) < 9 {
		return state.Chunk{}, state.ErrBadChunk
	}
	return state.Chunk{
		Type:  state.StoreType(payload[0]),
		Index: int(payload[1])<<24 | int(payload[2])<<16 | int(payload[3])<<8 | int(payload[4]),
		Of:    int(payload[5])<<24 | int(payload[6])<<16 | int(payload[7])<<8 | int(payload[8]),
		Data:  payload[9:],
	}, nil
}

// Output buffers are gob-encoded; applications must gob.Register their
// payload types (the runtime does so for the built-in applications).
func encodeBuffers(buffered map[int][][]core.Item) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(buffered); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeBuffers(payload []byte) (map[int][][]core.Item, error) {
	var out map[int][][]core.Item
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
