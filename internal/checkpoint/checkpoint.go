// Package checkpoint implements the failure-recovery substrate of §5:
// asynchronous local checkpoints with dirty state, synchronous
// (stop-the-world) checkpoints for the baseline comparison, and the m-to-n
// parallel backup/restore protocol of Fig. 4.
//
// A checkpoint of one SE instance consists of hash-partitioned chunks
// (produced by the state package — shard-parallel when the SE is backed by
// a ShardedKVMap), the instance's output buffers, and the vector of input
// watermarks at snapshot time. Chunks are streamed to m backup nodes
// round-robin and written to their simulated disks; at restore time each
// backup chunk is split n ways so n recovering instances rebuild in
// parallel. Dictionary chunks use one wire format regardless of backend,
// so sharded and single-lock checkpoints restore into either store.
//
// Epochs form chains: a full (base) checkpoint starts a chain, and delta
// checkpoints — carrying only the keys changed since the previous epoch —
// append to it. The manifest records the chain, Restore fetches base +
// deltas and replays them per recovering instance, and a superseded chain
// is freed only after the next base commit lands, so a crash mid-save never
// leaves the instance without a restorable checkpoint.
package checkpoint

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/wire/flat"
)

// Mode selects the fault-tolerance strategy.
type Mode int

const (
	// ModeOff disables checkpointing (the paper's "No FT" configuration).
	ModeOff Mode = iota
	// ModeAsync is the paper's contribution: dirty-state checkpoints that
	// let processing continue while the snapshot is serialised.
	ModeAsync
	// ModeSync stops processing for the duration of the checkpoint, as
	// Naiad and SEEP do; used by the baselines and Fig. 12.
	ModeSync
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAsync:
		return "async"
	case ModeSync:
		return "sync"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// EpochRef names one committed epoch of a chain: its number, how many
// chunks it wrote, their total payload bytes, and whether it is a delta.
type EpochRef struct {
	Epoch  uint64
	Chunks int
	Bytes  int64
	Delta  bool
}

// Meta describes one committed checkpoint of one SE instance. The
// per-TE maps cover the TE instances colocated with the SE instance (the
// ones whose processing mutates it): their input watermark vectors, output
// sequence counters and output buffers all ride with the snapshot so a
// restored node resumes log-based recovery exactly where the snapshot was
// taken (§5).
type Meta struct {
	SE        string          // SE instance identity, e.g. "coOcc/1"
	Epoch     uint64          // monotonically increasing per instance
	Chunks    int             // number of chunks written by this epoch
	Delta     bool            // this epoch is an incremental delta
	StoreType state.StoreType // for reconstruction
	// Chain is the epoch chain needed to rebuild the state: the base epoch
	// followed by the committed delta epochs in apply order. Save fills it
	// on commit; a full checkpoint's chain is just its own epoch.
	Chain      []EpochRef
	Watermarks map[int]map[uint64]uint64 // TE id -> origin -> last seq
	OutSeqs    map[int]uint64            // TE id -> output seq counter
	Buffered   map[int][][]core.Item     // TE id -> per-out-edge buffers
}

// Result reports the cost of taking one checkpoint. Whether the epoch was
// incremental is recorded in Meta.Delta.
type Result struct {
	Meta         Meta
	Bytes        int64         // chunk payload written to backup disks
	StateBytes   int64         // approximate in-memory state size at snapshot time
	Duration     time.Duration // wall time for the whole procedure
	LockTime     time.Duration // time the SE was locked (merge for async)
	MergedDirty  int           // dirty entries consolidated (async only)
	SnapshotTime time.Duration // serialisation time
}

// Policy selects between full and delta epochs and bounds chain growth.
// The zero value (Delta false) always takes full checkpoints.
type Policy struct {
	// Delta enables incremental epochs for stores that track changed keys.
	Delta bool
	// CompactEvery forces a new base after this many consecutive deltas
	// (default 8). Longer chains write fewer bytes but lengthen recovery.
	CompactEvery int
	// CompactRatio forces a new base once the chain's cumulative delta
	// bytes exceed this fraction of the base's bytes (default 0.5): past
	// that point replay cost approaches a fresh base's write cost.
	CompactRatio float64
}

func (p Policy) withDefaults() Policy {
	if p.CompactEvery <= 0 {
		p.CompactEvery = 8
	}
	if p.CompactRatio <= 0 {
		p.CompactRatio = 0.5
	}
	return p
}

// Backup is the checkpoint store: it spreads chunks over m backup nodes and
// keeps the manifest of the latest committed checkpoint chain per SE
// instance. The manifest plays the role of cluster metadata that survives
// worker failures.
type Backup struct {
	cl      *cluster.Cluster
	targets []*cluster.Node

	// CompressBase flate-compresses base (full) chunk payloads before they
	// hit the backup disks; delta chunks stay raw — they are already small
	// and their write rate is the hot path. Set before the first Save (it
	// is read concurrently by chunk writers); restores auto-detect either
	// way from the chunk header, so the setting can change across epochs.
	CompressBase bool

	mu        sync.Mutex
	manifests map[string]Meta
}

// NewBackup creates a backup store over the given target nodes (m = number
// of targets).
func NewBackup(cl *cluster.Cluster, targets []*cluster.Node) *Backup {
	return &Backup{cl: cl, targets: targets, manifests: make(map[string]Meta)}
}

// Targets reports the number of backup nodes (m).
func (b *Backup) Targets() int { return len(b.targets) }

func chunkName(se string, epoch uint64, idx int) string {
	return fmt.Sprintf("ckpt/%s/%d/%d", se, epoch, idx)
}

func bufName(se string, epoch uint64) string {
	return fmt.Sprintf("ckpt/%s/%d/buffers", se, epoch)
}

// ioPool sizes the bounded worker pool for chunk transfers: enough workers
// to keep every backup disk busy and exploit the cores, but bounded so an
// epoch with hundreds of chunks does not fan out hundreds of goroutines
// (which also destabilises LockTime/Duration accounting on small machines).
func ioPool(jobs, targets int) int {
	w := 2 * goruntime.GOMAXPROCS(0)
	if w < targets {
		w = targets // one in-flight transfer per backup disk minimum
	}
	if w < 2 {
		w = 2
	}
	if w > 32 {
		w = 32
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// runBounded executes fn(0..n-1) on at most workers goroutines.
func runBounded(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Save streams the chunks to the backup nodes (Fig. 4 steps B2-B3: a
// bounded pool of workers streams chunks round-robin across the m targets)
// and commits the manifest. A delta epoch appends to the existing chain; a
// base epoch starts a new chain and frees the superseded one only after
// the new manifest is committed. It reports the payload bytes written.
//
// Delta epochs are validated against the chain before anything touches a
// disk, so an aborted delta save leaves no partial epoch behind.
func (b *Backup) Save(meta Meta, chunks []state.Chunk) (int64, error) {
	if len(b.targets) == 0 {
		return 0, fmt.Errorf("checkpoint: no backup targets")
	}
	b.mu.Lock()
	prev, had := b.manifests[meta.SE]
	b.mu.Unlock()
	if meta.Delta {
		if !had || len(prev.Chain) == 0 {
			return 0, fmt.Errorf("checkpoint: delta epoch %d of %q has no base chain", meta.Epoch, meta.SE)
		}
		if tip := prev.Chain[len(prev.Chain)-1].Epoch; meta.Epoch <= tip {
			return 0, fmt.Errorf("checkpoint: delta epoch %d of %q does not extend chain tip %d", meta.Epoch, meta.SE, tip)
		}
	}
	bufBytes, err := encodeBuffers(meta.Buffered)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: encode buffers: %w", err)
	}
	// chunkBytes counts payload bytes as stored (post-compression), so
	// Result.Bytes and the chain's compaction-ratio accounting both see
	// what the disks and the network actually carried.
	var written atomic.Int64
	runBounded(len(chunks), ioPool(len(chunks), len(b.targets)), func(i int) {
		c := chunks[i]
		target := b.targets[i%len(b.targets)]
		name := chunkName(meta.SE, meta.Epoch, i)
		data := c.Data
		var fe *flateEnc
		if b.CompressBase && !c.Delta && len(data) >= compressMinSize {
			fe = flatePool.Get().(*flateEnc)
			fe.buf.Reset()
			fe.w.Reset(&fe.buf)
			// Writes to a bytes.Buffer cannot fail; a compressed result no
			// smaller than the input is simply not worth the restore cost.
			fe.w.Write(data)
			fe.w.Close()
			if fe.buf.Len() < len(data) {
				data = fe.buf.Bytes()
			} else {
				flatePool.Put(fe)
				fe = nil
			}
		}
		// The header is written as a separate disk part so the payload is
		// never re-copied into a contiguous header+data slice; WriteParts
		// copies both parts, so a pooled compression buffer is immediately
		// reusable afterwards.
		if fe != nil {
			hdr := chunkHeaderV2(c, chunkFlagFlate)
			b.cl.Transfer(int64(len(hdr)) + int64(len(data)))
			target.Disk.WriteParts(name, hdr[:], data)
			flatePool.Put(fe)
		} else {
			hdr := chunkHeader(c)
			b.cl.Transfer(int64(len(hdr)) + int64(len(data)))
			target.Disk.WriteParts(name, hdr[:], data)
		}
		written.Add(int64(len(data)))
	})
	chunkBytes := written.Load()
	// Output buffers ride with the first target.
	b.cl.Transfer(int64(len(bufBytes)))
	b.targets[0].Disk.Write(bufName(meta.SE, meta.Epoch), bufBytes)
	total := chunkBytes + int64(len(bufBytes))

	// Commit the manifest under one critical section: the chain is rebuilt
	// from the manifest as it is *now*, so a Save that raced another commit
	// for the same SE cannot silently drop an epoch from the chain. (The
	// store-level dirty flag serialises checkpoints per instance, so the
	// race is unreachable through the runtime; Backup is a public API.)
	meta.Chunks = len(chunks)
	ref := EpochRef{Epoch: meta.Epoch, Chunks: len(chunks), Bytes: chunkBytes, Delta: meta.Delta}
	b.mu.Lock()
	cur, curHad := b.manifests[meta.SE]
	if meta.Delta {
		if !curHad || len(cur.Chain) == 0 || cur.Chain[len(cur.Chain)-1].Epoch != prev.Chain[len(prev.Chain)-1].Epoch {
			// The chain moved under us between validation and commit.
			b.mu.Unlock()
			b.deleteEpoch(meta.SE, ref)
			b.targets[0].Disk.Delete(bufName(meta.SE, meta.Epoch))
			return 0, fmt.Errorf("checkpoint: chain of %q advanced during delta save of epoch %d", meta.SE, meta.Epoch)
		}
		meta.Chain = append(append([]EpochRef(nil), cur.Chain...), ref)
	} else {
		meta.Chain = []EpochRef{ref}
	}
	b.manifests[meta.SE] = meta
	b.mu.Unlock()
	if curHad {
		if meta.Delta {
			// The chain lives on; only the previous epoch's buffer object is
			// superseded (restores read buffers from the chain tip).
			if cur.Epoch != meta.Epoch {
				b.targets[0].Disk.Delete(bufName(meta.SE, cur.Epoch))
			}
		} else {
			// New base committed: the whole previous chain is now free.
			b.gcChain(cur, ref)
		}
	}
	return total, nil
}

// deleteEpoch removes one epoch's chunk objects.
func (b *Backup) deleteEpoch(se string, ref EpochRef) {
	for i := 0; i < ref.Chunks; i++ {
		b.targets[i%len(b.targets)].Disk.Delete(chunkName(se, ref.Epoch, i))
	}
}

// gcChain deletes every chunk object of a superseded chain plus its tip
// buffer object. Called only after the superseding manifest is committed
// (or the SE is forgotten), never mid-chain. An old epoch colliding with
// keep.Epoch is mostly preserved: an instance rebuilt by scaling restarts
// its epoch counter, so a fresh base can reuse an epoch number the old
// chain also used — its first keep.Chunks objects were just overwritten by
// the new epoch, and only the old epoch's excess chunks are freed.
func (b *Backup) gcChain(old Meta, keep EpochRef) {
	refs := old.Chain
	if len(refs) == 0 {
		// Pre-chain manifest (constructed by hand): fall back to the epoch.
		refs = []EpochRef{{Epoch: old.Epoch, Chunks: old.Chunks}}
	}
	for _, ref := range refs {
		if keep.Epoch != 0 && ref.Epoch == keep.Epoch {
			for i := keep.Chunks; i < ref.Chunks; i++ {
				b.targets[i%len(b.targets)].Disk.Delete(chunkName(old.SE, ref.Epoch, i))
			}
			continue
		}
		b.deleteEpoch(old.SE, ref)
	}
	if old.Epoch != keep.Epoch {
		b.targets[0].Disk.Delete(bufName(old.SE, old.Epoch))
	}
}

// Latest returns the manifest of the newest committed checkpoint of the SE
// instance.
func (b *Backup) Latest(se string) (Meta, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.manifests[se]
	return m, ok
}

// ShouldDelta reports whether the next epoch of the SE instance may be
// incremental under the policy: a chain must exist, and neither compaction
// trigger (delta count, cumulative delta bytes) may have fired.
func (b *Backup) ShouldDelta(se string, p Policy) bool {
	if !p.Delta {
		return false
	}
	p = p.withDefaults()
	m, ok := b.Latest(se)
	if !ok || len(m.Chain) == 0 || m.Chain[0].Delta {
		return false
	}
	deltas := m.Chain[1:]
	if len(deltas) >= p.CompactEvery {
		return false
	}
	var deltaBytes int64
	for _, d := range deltas {
		deltaBytes += d.Bytes
	}
	return float64(deltaBytes) < p.CompactRatio*float64(m.Chain[0].Bytes)
}

// RestoreSet holds the ordered chunk groups one recovering instance
// applies: the base epoch's chunks first, then each delta epoch's chunks in
// chain order.
type RestoreSet struct {
	Base   []state.Chunk
	Deltas [][]state.Chunk
}

// Restore implements the n-way parallel restore (Fig. 4 steps R1-R2) over
// a whole epoch chain: every chunk of every chain epoch is read from its
// disk, split into n partitions, and the partitions are grouped per
// recovering instance with base and delta epochs kept apart so each
// instance replays them in order. sets[j] holds the groups for recovering
// instance j. Reads and splits run on a bounded worker pool.
func (b *Backup) Restore(se string, n int) (sets []RestoreSet, meta Meta, err error) {
	meta, ok := b.Latest(se)
	if !ok {
		return nil, Meta{}, fmt.Errorf("checkpoint: no checkpoint for %q", se)
	}
	if n < 1 {
		return nil, Meta{}, state.ErrBadSplit
	}
	chain := meta.Chain
	if len(chain) == 0 {
		chain = []EpochRef{{Epoch: meta.Epoch, Chunks: meta.Chunks}}
	}
	sets = make([]RestoreSet, n)
	for j := range sets {
		sets[j].Deltas = make([][]state.Chunk, len(chain)-1)
	}
	// Flatten the chain into (epoch index, chunk index) jobs.
	type job struct{ ei, ci int }
	var jobs []job
	for ei, ref := range chain {
		for ci := 0; ci < ref.Chunks; ci++ {
			jobs = append(jobs, job{ei, ci})
		}
	}
	var mu sync.Mutex
	errs := make([]error, len(jobs))
	runBounded(len(jobs), ioPool(len(jobs), len(b.targets)), func(idx int) {
		j := jobs[idx]
		ref := chain[j.ei]
		target := b.targets[j.ci%len(b.targets)]
		payload, err := target.Disk.Read(chunkName(se, ref.Epoch, j.ci))
		if err != nil {
			errs[idx] = err
			return
		}
		b.cl.Transfer(int64(len(payload)))
		c, err := decodeChunk(payload)
		if err != nil {
			errs[idx] = err
			return
		}
		parts, err := state.SplitChunk(c, n)
		if err != nil {
			errs[idx] = err
			return
		}
		mu.Lock()
		for g, p := range parts {
			if j.ei == 0 {
				sets[g].Base = append(sets[g].Base, p)
			} else {
				sets[g].Deltas[j.ei-1] = append(sets[g].Deltas[j.ei-1], p)
			}
		}
		mu.Unlock()
	})
	for _, e := range errs {
		if e != nil {
			return nil, Meta{}, fmt.Errorf("checkpoint: restore %q: %w", se, e)
		}
	}
	// Recover buffered output items from the chain tip.
	bufPayload, err := b.targets[0].Disk.Read(bufName(se, meta.Epoch))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("checkpoint: restore buffers for %q: %w", se, err)
	}
	b.cl.Transfer(int64(len(bufPayload)))
	buffered, err := decodeBuffers(bufPayload)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("checkpoint: decode buffers for %q: %w", se, err)
	}
	meta.Buffered = buffered
	return sets, meta, nil
}

// Forget drops the manifest and the stored chain for an SE instance.
func (b *Backup) Forget(se string) {
	b.mu.Lock()
	meta, ok := b.manifests[se]
	delete(b.manifests, se)
	b.mu.Unlock()
	if ok {
		b.gcChain(meta, EpochRef{})
	}
}

// Chunk wire format on backup disks. Two header versions coexist:
//
//	v1 (9 bytes):  [type|0x80 delta][index:4][of:4] data
//	v2 (10 bytes): [type|0x80 delta|0x40 v2][index:4][of:4][flags] data
//
// The v2 marker rides in byte 0 next to the delta bit (StoreType values are
// tiny, both high bits are free), and the flags byte says how the data is
// stored — currently only chunkFlagFlate. Writers emit v2 only when flags
// are non-zero, so uncompressed chunks stay byte-identical to v1 and old
// chunks restore unchanged. The header is written as a separate disk part
// so the payload never needs to be copied into a contiguous header+data
// slice.
const (
	chunkDeltaFlag = 0x80
	chunkV2Flag    = 0x40

	// chunkFlagFlate: the data is a flate stream of the chunk payload.
	chunkFlagFlate = 0x01
)

// compressMinSize skips compression for chunks too small to amortise the
// flate stream overhead.
const compressMinSize = 128

// flateEnc pairs a flate writer with its output buffer so both recycle
// together; chunk writers run concurrently, so the pair is pooled.
type flateEnc struct {
	buf bytes.Buffer
	w   *flate.Writer
}

var flatePool = sync.Pool{New: func() any {
	fe := &flateEnc{}
	fe.w, _ = flate.NewWriter(&fe.buf, flate.BestSpeed)
	return fe
}}

func chunkByte0(c state.Chunk) byte {
	t := byte(c.Type)
	if c.Delta {
		t |= chunkDeltaFlag
	}
	return t
}

func putChunkIndexOf(h []byte, c state.Chunk) {
	h[0] = byte(c.Index >> 24)
	h[1] = byte(c.Index >> 16)
	h[2] = byte(c.Index >> 8)
	h[3] = byte(c.Index)
	h[4] = byte(c.Of >> 24)
	h[5] = byte(c.Of >> 16)
	h[6] = byte(c.Of >> 8)
	h[7] = byte(c.Of)
}

func chunkHeader(c state.Chunk) [9]byte {
	var h [9]byte
	h[0] = chunkByte0(c)
	putChunkIndexOf(h[1:], c)
	return h
}

func chunkHeaderV2(c state.Chunk, flags byte) [10]byte {
	var h [10]byte
	h[0] = chunkByte0(c) | chunkV2Flag
	putChunkIndexOf(h[1:], c)
	h[9] = flags
	return h
}

func decodeChunk(payload []byte) (state.Chunk, error) {
	if len(payload) < 9 {
		return state.Chunk{}, state.ErrBadChunk
	}
	c := state.Chunk{
		Type:  state.StoreType(payload[0] &^ (chunkDeltaFlag | chunkV2Flag)),
		Delta: payload[0]&chunkDeltaFlag != 0,
		Index: int(payload[1])<<24 | int(payload[2])<<16 | int(payload[3])<<8 | int(payload[4]),
		Of:    int(payload[5])<<24 | int(payload[6])<<16 | int(payload[7])<<8 | int(payload[8]),
	}
	data := payload[9:]
	if payload[0]&chunkV2Flag != 0 {
		if len(payload) < 10 {
			return state.Chunk{}, state.ErrBadChunk
		}
		flags := payload[9]
		data = payload[10:]
		if flags&^byte(chunkFlagFlate) != 0 {
			// An unknown storage flag means a future writer: refuse rather
			// than misparse the data.
			return state.Chunk{}, state.ErrBadChunk
		}
		if flags&chunkFlagFlate != 0 {
			r := flate.NewReader(bytes.NewReader(data))
			var buf bytes.Buffer
			if _, err := io.Copy(&buf, r); err != nil {
				return state.Chunk{}, state.ErrBadChunk
			}
			r.Close()
			data = buf.Bytes()
		}
	}
	c.Data = data
	return c, nil
}

// Output buffers use the flat item codec (uvarint map/slice counts, tagged
// values); payload types outside the flat tag table ride its gob fallback,
// so applications register them exactly as before.
func encodeBuffers(buffered map[int][][]core.Item) ([]byte, error) {
	e := flat.GetEncoder()
	defer flat.PutEncoder(e)
	e.Uvarint(uint64(len(buffered)))
	for id, edges := range buffered {
		e.Varint(int64(id))
		e.Uvarint(uint64(len(edges)))
		for _, items := range edges {
			e.Uvarint(uint64(len(items)))
			for i := range items {
				if err := e.Item(items[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out, nil
}

func decodeBuffers(payload []byte) (map[int][][]core.Item, error) {
	// Copy-mode decode: the disk hands back its stored slice, which must
	// survive the decoded items.
	d := flat.NewDecoder(payload)
	nTE := d.Uvarint()
	// Every TE entry costs at least two bytes (id + edge count); a larger
	// claim is hostile — reject before the map allocation sized by it.
	if nTE > uint64(d.Remaining()) {
		return nil, fmt.Errorf("checkpoint: buffer TE count %d exceeds payload", nTE)
	}
	out := make(map[int][][]core.Item, nTE)
	for t := uint64(0); t < nTE && d.Err() == nil; t++ {
		id := int(d.Varint())
		nEdges := d.Uvarint()
		// Every edge costs at least its one-byte count; a larger claim is
		// hostile — reject before allocating.
		if nEdges > uint64(d.Remaining()) {
			return nil, fmt.Errorf("checkpoint: buffer edge count %d exceeds payload", nEdges)
		}
		edges := make([][]core.Item, nEdges)
		for ei := uint64(0); ei < nEdges && d.Err() == nil; ei++ {
			nItems := d.Uvarint()
			if nItems > uint64(d.Remaining()) {
				return nil, fmt.Errorf("checkpoint: buffer item count %d exceeds payload", nItems)
			}
			if nItems == 0 {
				continue
			}
			items := make([]core.Item, 0, nItems)
			for i := uint64(0); i < nItems && d.Err() == nil; i++ {
				items = append(items, d.Item())
			}
			edges[ei] = items
		}
		out[id] = edges
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if !d.Done() {
		return nil, fmt.Errorf("checkpoint: %d trailing buffer byte(s)", d.Remaining())
	}
	return out, nil
}
