package checkpoint

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/state"
)

// TestStreamAsyncDrainAndClose: StreamAsync cuts the store dirty, serves
// the frozen base in bounded chunks, and Close merges the overlay back
// exactly once — after which writes hit the base directly again.
func TestStreamAsyncDrainAndClose(t *testing.T) {
	m := state.NewKVMap()
	for i := 0; i < 300; i++ {
		m.Put(uint64(i), []byte(fmt.Sprintf("val-%03d", i)))
	}

	cs, err := StreamAsync(m, 512)
	if err != nil {
		t.Fatalf("StreamAsync: %v", err)
	}
	// The store is dirty now: concurrent-with-transfer writes divert to
	// the overlay and must not appear in the streamed chunks.
	m.Put(5, []byte("post-cut"))

	var chunks []state.Chunk
	for {
		ck, ok, err := cs.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		chunks = append(chunks, ck)
	}
	if len(chunks) < 2 {
		t.Fatalf("%d chunk(s), expected a split at 512-byte budget", len(chunks))
	}
	if err := cs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Idempotent: the second Close must not merge (or fail) again.
	if err := cs.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := cs.Next(); err == nil {
		t.Fatal("Next after Close succeeded")
	}

	// The stream carries the pre-cut value; the live store the overlay one.
	dst := state.NewKVMap()
	if err := dst.Restore(chunks); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if v, _ := dst.Get(5); bytes.Equal(v, []byte("post-cut")) {
		t.Fatal("post-cut write leaked into the streamed checkpoint")
	}
	if v, ok := m.Get(5); !ok || !bytes.Equal(v, []byte("post-cut")) {
		t.Fatalf("overlay write lost after Close: %q ok=%v", v, ok)
	}
	// Merged back means a fresh BeginDirty works (dirty mode is not
	// re-entrant, so this also proves Close really merged).
	if err := m.BeginDirty(); err != nil {
		t.Fatalf("BeginDirty after Close: %v", err)
	}
	if _, err := m.MergeDirty(); err != nil {
		t.Fatalf("MergeDirty: %v", err)
	}
}

// TestStreamAsyncErrorMerges: a StreamChunks failure inside StreamAsync
// must merge the dirty overlay back before returning, leaving the store
// usable.
func TestStreamAsyncErrorMerges(t *testing.T) {
	m := state.NewKVMap()
	m.Put(1, []byte("x"))
	if _, err := StreamAsync(m, 0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	// The failed open must have rolled dirty mode back.
	if err := m.BeginDirty(); err != nil {
		t.Fatalf("store left dirty after failed StreamAsync: %v", err)
	}
	if _, err := m.MergeDirty(); err != nil {
		t.Fatalf("MergeDirty: %v", err)
	}
}
