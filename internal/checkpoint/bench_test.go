package checkpoint

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/state"
)

// TestChunkWriteAllocCount guards the encodeChunk fix: streaming a chunk to
// a backup disk must not rebuild header+data into a fresh slice. The only
// payload-sized allocation allowed is the disk's own internal copy, so the
// write path stays at <= 2 allocations per chunk regardless of chunk size
// (the old path added a third, payload-sized one).
func TestChunkWriteAllocCount(t *testing.T) {
	disk := cluster.NewDisk(0, 0)
	c := state.Chunk{Type: state.TypeKVMap, Index: 1, Of: 2, Data: make([]byte, 1<<20)}
	allocs := testing.AllocsPerRun(50, func() {
		hdr := chunkHeader(c)
		disk.WriteParts("bench/chunk", hdr[:], c.Data)
	})
	if allocs > 2 {
		t.Fatalf("chunk write path allocates %.1f times per op, want <= 2", allocs)
	}
}

// BenchmarkChunkWrite records ns/op, B/op and allocs/op of streaming one
// 1 MB chunk to a modelled disk — the hot inner loop of Backup.Save.
func BenchmarkChunkWrite(b *testing.B) {
	disk := cluster.NewDisk(0, 0)
	c := state.Chunk{Type: state.TypeKVMap, Index: 1, Of: 2, Data: make([]byte, 1<<20)}
	b.SetBytes(int64(len(c.Data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hdr := chunkHeader(c)
		disk.WriteParts("bench/chunk", hdr[:], c.Data)
	}
}

func benchStore(b *testing.B, backend string, keys int) state.DeltaStore {
	b.Helper()
	var st state.DeltaStore
	if backend == "sharded" {
		st = state.NewShardedKVMap(0)
	} else {
		st = state.NewKVMap()
	}
	st.EnableDeltaTracking()
	kv := st.(state.KV)
	val := make([]byte, 64)
	for i := 0; i < keys; i++ {
		kv.Put(uint64(i), val)
	}
	return st
}

// BenchmarkSaveFullEpoch measures a full checkpoint epoch (serialise +
// backup + merge) on a 20k-key store.
func BenchmarkSaveFullEpoch(b *testing.B) {
	for _, backend := range []string{"kvmap", "sharded"} {
		b.Run(backend, func(b *testing.B) {
			cl := cluster.New(2, cluster.Config{})
			bk := NewBackup(cl, []*cluster.Node{cl.Node(0), cl.Node(1)})
			st := benchStore(b, backend, 20_000)
			b.ReportAllocs()
			b.ResetTimer()
			var bytes int64
			for i := 0; i < b.N; i++ {
				res, err := Async(st, Meta{SE: "b/0", Epoch: uint64(i + 1)}, 4, bk)
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.Bytes
			}
			b.ReportMetric(float64(bytes), "payloadB/epoch")
		})
	}
}

// BenchmarkSaveDeltaEpoch measures a delta epoch at 1% churn on the same
// store size; compare payloadB/epoch against BenchmarkSaveFullEpoch.
func BenchmarkSaveDeltaEpoch(b *testing.B) {
	for _, backend := range []string{"kvmap", "sharded"} {
		b.Run(backend, func(b *testing.B) {
			cl := cluster.New(2, cluster.Config{})
			bk := NewBackup(cl, []*cluster.Node{cl.Node(0), cl.Node(1)})
			st := benchStore(b, backend, 20_000)
			kv := st.(state.KV)
			if _, err := Async(st, Meta{SE: "b/0", Epoch: 1}, 4, bk); err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 64)
			ep := uint64(1)
			b.ReportAllocs()
			b.ResetTimer()
			var bytes int64
			for i := 0; i < b.N; i++ {
				if i%16 == 15 {
					// Compact off-clock so the chain (and disk usage) stays
					// bounded at long bench times.
					b.StopTimer()
					ep++
					if _, err := Async(st, Meta{SE: "b/0", Epoch: ep}, 4, bk); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				for j := 0; j < 200; j++ { // 1% of 20k
					kv.Put(uint64((i*200+j*13)%20_000), val)
				}
				ep++
				res, err := AsyncDelta(st, Meta{SE: "b/0", Epoch: ep}, 4, bk)
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.Bytes
			}
			b.ReportMetric(float64(bytes), "payloadB/epoch")
		})
	}
}

// BenchmarkTrackedPut measures the hot-path cost of changed-key tracking:
// the same put loop with tracking off and on.
func BenchmarkTrackedPut(b *testing.B) {
	for _, tracked := range []bool{false, true} {
		b.Run(fmt.Sprintf("tracked=%v", tracked), func(b *testing.B) {
			st := state.NewKVMap()
			if tracked {
				st.EnableDeltaTracking()
			}
			val := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Put(uint64(i%100_000), val)
			}
		})
	}
}
