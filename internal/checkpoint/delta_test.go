package checkpoint

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/state"
)

// mkTracked builds a populated, delta-tracking dictionary store.
func mkTracked(backend string, keys int, val []byte) state.DeltaStore {
	var st state.DeltaStore
	if backend == "sharded" {
		st = state.NewShardedKVMap(8)
	} else {
		st = state.NewKVMap()
	}
	st.EnableDeltaTracking()
	kv := st.(state.KV)
	for i := 0; i < keys; i++ {
		kv.Put(uint64(i), val)
	}
	return st
}

func storesEqual(t *testing.T, want state.KV, got state.Store) {
	t.Helper()
	gkv := got.(state.KV)
	if wn, gn := want.NumEntries(), gkv.NumEntries(); wn != gn {
		t.Fatalf("entries = %d, want %d", gn, wn)
	}
	want.ForEach(func(k uint64, v []byte) bool {
		gv, ok := gkv.Get(k)
		if !ok || string(gv) != string(v) {
			t.Fatalf("key %d = %q,%v want %q", k, gv, ok, v)
		}
		return true
	})
}

// TestDeltaChainSaveRestore drives base + delta epochs through the full
// backup protocol for both backends and restores across backends and
// across n-way rescales — the crash-recovery acceptance path.
func TestDeltaChainSaveRestore(t *testing.T) {
	for _, backend := range []string{"kvmap", "sharded"} {
		t.Run(backend, func(t *testing.T) {
			_, b := newBackupEnv(t, 2, 0)
			st := mkTracked(backend, 2000, []byte("v0"))
			kv := st.(state.KV)

			res, err := Async(st, Meta{SE: "kv/0", Epoch: 1}, 4, b)
			if err != nil {
				t.Fatal(err)
			}
			if res.Meta.Delta {
				t.Fatal("base epoch reported as delta")
			}

			// Three delta epochs: updates, deletes, inserts.
			for e := uint64(2); e <= 4; e++ {
				for i := uint64(0); i < 20; i++ {
					kv.Put(i+e*100, []byte(fmt.Sprintf("e%d", e)))
				}
				kv.Delete(e) // keys 2,3,4 get tombstoned across the chain
				kv.Put(100000+e, []byte("ins"))
				res, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: e}, 4, b)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Meta.Delta || res.Bytes <= 0 {
					t.Fatalf("delta result = %+v", res)
				}
			}
			meta, ok := b.Latest("kv/0")
			if !ok || len(meta.Chain) != 4 {
				t.Fatalf("chain = %+v", meta.Chain)
			}

			// Restore into 1, 2 and 3 instances; reassemble and compare with
			// the live store; also cross-restore into the other backend.
			for _, n := range []int{1, 2, 3} {
				sets, meta, err := b.Restore("kv/0", n)
				if err != nil {
					t.Fatal(err)
				}
				// Reassemble into the opposite backend to prove the chain
				// is interchangeable across dictionary stores.
				var whole state.KV
				if backend == "sharded" {
					whole = state.NewKVMap()
				} else {
					whole = state.NewShardedKVMap(4)
				}
				for j, set := range sets {
					inst, err := RestoreInstance(meta, set)
					if err != nil {
						t.Fatal(err)
					}
					inst.(state.KV).ForEach(func(k uint64, v []byte) bool {
						if state.PartitionKey(k, n) != j {
							t.Errorf("key %d restored to wrong instance %d/%d", k, j, n)
							return false
						}
						whole.Put(k, v)
						return true
					})
				}
				storesEqual(t, kv, whole)
			}
		})
	}
}

// TestDeltaBytesRatio is the headline acceptance check: on a 100k-key
// store with 1% churn per epoch, a delta epoch writes >= 10x fewer payload
// bytes than a full epoch, on both backends.
func TestDeltaBytesRatio(t *testing.T) {
	keys := 100_000
	if testing.Short() {
		keys = 20_000
	}
	for _, backend := range []string{"kvmap", "sharded"} {
		t.Run(backend, func(t *testing.T) {
			_, b := newBackupEnv(t, 2, 0)
			st := mkTracked(backend, keys, []byte("sixteen-byte-val"))
			kv := st.(state.KV)
			base, err := Async(st, Meta{SE: "kv/0", Epoch: 1}, 4, b)
			if err != nil {
				t.Fatal(err)
			}
			// 1% churn.
			for i := 0; i < keys/100; i++ {
				kv.Put(uint64(i*97%keys), []byte("sixteen-byte-new"))
			}
			delta, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: 2}, 4, b)
			if err != nil {
				t.Fatal(err)
			}
			if delta.Bytes*10 > base.Bytes {
				t.Fatalf("delta wrote %d bytes vs full %d: less than 10x saving", delta.Bytes, base.Bytes)
			}
			t.Logf("full=%dB delta=%dB ratio=%.1fx", base.Bytes, delta.Bytes,
				float64(base.Bytes)/float64(delta.Bytes))
		})
	}
}

// TestChainGC: a superseded chain is freed only after the next base
// commit; mid-chain delta commits free nothing but the stale buffer
// object; Forget frees a whole chain.
func TestChainGC(t *testing.T) {
	cl, b := newBackupEnv(t, 2, 0)
	st := mkTracked("kvmap", 500, []byte("v"))
	kv := st.(state.KV)

	onDisk := func() []string {
		var names []string
		for i := 0; i < 2; i++ {
			names = append(names, cl.Node(i).Disk.List()...)
		}
		return names
	}
	countEpoch := func(epoch uint64) int {
		n := 0
		for _, name := range onDisk() {
			if strings.HasPrefix(name, fmt.Sprintf("ckpt/kv/0/%d/", epoch)) {
				n++
			}
		}
		return n
	}

	if _, err := Async(st, Meta{SE: "kv/0", Epoch: 1}, 2, b); err != nil {
		t.Fatal(err)
	}
	for e := uint64(2); e <= 3; e++ {
		kv.Put(e, []byte("x"))
		if _, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: e}, 2, b); err != nil {
			t.Fatal(err)
		}
	}
	// Whole chain must remain restorable: epochs 1-3 chunks on disk.
	for e := uint64(1); e <= 3; e++ {
		want := 2
		if e == 3 {
			want = 3 // chain tip also holds the buffers object
		}
		if got := countEpoch(e); got != want {
			t.Fatalf("epoch %d objects = %d, want %d (disk: %v)", e, got, want, onDisk())
		}
	}

	// A new base (compaction) supersedes the chain: only epoch 4 survives.
	kv.Put(99, []byte("x"))
	if _, err := Async(st, Meta{SE: "kv/0", Epoch: 4}, 2, b); err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		if got := countEpoch(e); got != 0 {
			t.Fatalf("superseded epoch %d still has %d objects: %v", e, got, onDisk())
		}
	}
	if got := countEpoch(4); got != 3 {
		t.Fatalf("epoch 4 objects = %d, want 3", got)
	}

	// Forget mid-chain frees everything.
	kv.Put(100, []byte("x"))
	if _, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: 5}, 2, b); err != nil {
		t.Fatal(err)
	}
	b.Forget("kv/0")
	if got := len(onDisk()); got != 0 {
		t.Fatalf("%d objects survived Forget: %v", got, onDisk())
	}
}

// TestDeltaSaveAbort covers mid-chain failures: a delta save that aborts
// (no base chain, stale epoch, no targets) writes nothing, keeps the
// manifest chain intact, and — because AbortDelta refolds the cut — the
// retried epoch still restores identical state.
func TestDeltaSaveAbort(t *testing.T) {
	cl, b := newBackupEnv(t, 2, 0)
	st := mkTracked("kvmap", 300, []byte("v"))
	kv := st.(state.KV)

	// Delta without any base chain: validated before any disk write.
	if _, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: 1}, 2, b); err == nil {
		t.Fatal("delta without base should fail")
	}
	if got := len(cl.Node(0).Disk.List()) + len(cl.Node(1).Disk.List()); got != 0 {
		t.Fatalf("aborted delta left %d objects on disk", got)
	}

	if _, err := Async(st, Meta{SE: "kv/0", Epoch: 1}, 2, b); err != nil {
		t.Fatal(err)
	}
	kv.Put(7, []byte("seven"))
	kv.Delete(8)

	// Stale epoch (equal to the chain tip) must abort without touching disk.
	before := append(cl.Node(0).Disk.List(), cl.Node(1).Disk.List()...)
	if _, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: 1}, 2, b); err == nil {
		t.Fatal("stale delta epoch should fail")
	}
	after := append(cl.Node(0).Disk.List(), cl.Node(1).Disk.List()...)
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("aborted delta mutated disks: %v -> %v", before, after)
	}
	meta, _ := b.Latest("kv/0")
	if len(meta.Chain) != 1 {
		t.Fatalf("chain mutated by aborted save: %+v", meta.Chain)
	}

	// The aborted cut was refolded: the retried epoch carries the changes
	// and the restored state matches the live store.
	if _, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: 2}, 2, b); err != nil {
		t.Fatal(err)
	}
	sets, meta2, err := b.Restore("kv/0", 1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := RestoreInstance(meta2, sets[0])
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, kv, inst)
	if v, _ := inst.(state.KV).Get(7); string(v) != "seven" {
		t.Fatalf("retried delta lost update: %q", v)
	}
	if _, ok := inst.(state.KV).Get(8); ok {
		t.Fatal("retried delta lost tombstone")
	}
}

// TestShouldDeltaPolicy checks both compaction triggers.
func TestShouldDeltaPolicy(t *testing.T) {
	_, b := newBackupEnv(t, 1, 0)
	pol := Policy{Delta: true, CompactEvery: 2, CompactRatio: 100} // count-triggered
	if b.ShouldDelta("kv/0", pol) {
		t.Fatal("no chain yet: must take a base")
	}
	st := mkTracked("kvmap", 1000, []byte("value"))
	kv := st.(state.KV)
	if _, err := Async(st, Meta{SE: "kv/0", Epoch: 1}, 1, b); err != nil {
		t.Fatal(err)
	}
	if !b.ShouldDelta("kv/0", pol) {
		t.Fatal("fresh chain should allow deltas")
	}
	for e := uint64(2); e <= 3; e++ {
		kv.Put(e, []byte("x"))
		if _, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: e}, 1, b); err != nil {
			t.Fatal(err)
		}
	}
	if b.ShouldDelta("kv/0", pol) {
		t.Fatal("CompactEvery=2 reached: must compact")
	}
	if !b.ShouldDelta("kv/0", Policy{Delta: true, CompactEvery: 100, CompactRatio: 100}) {
		t.Fatal("relaxed policy should still allow deltas")
	}

	// Ratio trigger: huge churn makes delta bytes exceed the base fraction.
	for i := uint64(0); i < 1000; i++ {
		kv.Put(i, []byte("rewritten-value-now-larger"))
	}
	if _, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: 4}, 1, b); err != nil {
		t.Fatal(err)
	}
	if b.ShouldDelta("kv/0", Policy{Delta: true, CompactEvery: 100, CompactRatio: 0.5}) {
		t.Fatal("cumulative delta bytes exceed half the base: must compact")
	}
	if b.ShouldDelta("kv/0", Policy{}) {
		t.Fatal("zero policy must never choose delta")
	}
}

// TestEpochNumberReuseAfterReset reproduces the scaling hazard: an SE
// instance is rebuilt (epoch counter restarts), so its fresh base reuses an
// epoch number the superseded chain also used. The chain GC must not
// delete the just-committed epoch's objects.
func TestEpochNumberReuseAfterReset(t *testing.T) {
	_, b := newBackupEnv(t, 2, 0)
	st := mkTracked("kvmap", 400, []byte("old"))
	kv := st.(state.KV)

	// Old incarnation: chain {1, 2, 3}.
	if _, err := Async(st, Meta{SE: "kv/0", Epoch: 1}, 2, b); err != nil {
		t.Fatal(err)
	}
	for e := uint64(2); e <= 3; e++ {
		kv.Put(e, []byte("x"))
		if _, err := AsyncDelta(st, Meta{SE: "kv/0", Epoch: e}, 2, b); err != nil {
			t.Fatal(err)
		}
	}

	// New incarnation (as after a repartition): fresh store, epoch restarts
	// at 1, first checkpoint is a base with a different chunk count.
	st2 := mkTracked("kvmap", 150, []byte("new"))
	if _, err := Async(st2, Meta{SE: "kv/0", Epoch: 1}, 4, b); err != nil {
		t.Fatal(err)
	}

	sets, meta, err := b.Restore("kv/0", 1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := RestoreInstance(meta, sets[0])
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, st2.(state.KV), inst)
}
