package workload

import (
	"math"
	"testing"
)

func TestRatingGenDeterministic(t *testing.T) {
	a := NewRatingGen(42, 1000, 500).Batch(100)
	b := NewRatingGen(42, 1000, 500).Batch(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRatingGenRanges(t *testing.T) {
	g := NewRatingGen(1, 100, 50)
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if r.User < 0 || r.User >= 100 {
			t.Fatalf("user %d out of range", r.User)
		}
		if r.Item < 0 || r.Item >= 50 {
			t.Fatalf("item %d out of range", r.Item)
		}
		if r.Rating < 1 || r.Rating > 5 {
			t.Fatalf("rating %d out of range", r.Rating)
		}
	}
}

func TestRatingGenSkew(t *testing.T) {
	g := NewRatingGen(7, 10000, 10000)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().User]++
	}
	// Zipf: user 0 should be far more popular than the median user.
	if counts[0] < 100 {
		t.Errorf("head user only %d hits; want strong skew", counts[0])
	}
}

func TestKVGenReadFraction(t *testing.T) {
	g := NewKVGen(3, 1000, 0.5, 16)
	reads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Read {
			reads++
			if op.Value != nil {
				t.Fatal("read op carries a value")
			}
		} else if len(op.Value) != 16 {
			t.Fatalf("write value size %d, want 16", len(op.Value))
		}
		if op.Key >= 1000 {
			t.Fatalf("key %d out of range", op.Key)
		}
	}
	frac := float64(reads) / n
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("read fraction %f, want ~0.5", frac)
	}
}

func TestKVGenSkewed(t *testing.T) {
	g := NewKVGen(3, 1000, 0, 8).Skewed(1.5)
	counts := map[uint64]int{}
	for i := 0; i < 5000; i++ {
		counts[g.Next().Key]++
	}
	if counts[0] < 500 {
		t.Errorf("head key only %d hits under zipf(1.5); want skew", counts[0])
	}
}

func TestKVGenDefaults(t *testing.T) {
	g := NewKVGen(1, 0, 0, 0)
	op := g.Next()
	if op.Key != 0 {
		t.Errorf("keyspace 0 should clamp to 1, got key %d", op.Key)
	}
	if len(op.Value) != 64 {
		t.Errorf("default value size = %d, want 64", len(op.Value))
	}
}

func TestTextGen(t *testing.T) {
	g := NewTextGen(11, 100)
	if g.VocabSize() != 100 {
		t.Fatalf("vocab = %d, want 100", g.VocabSize())
	}
	line := g.Line(50)
	if len(line) != 50 {
		t.Fatalf("line len = %d", len(line))
	}
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		seen[g.Word()] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct words in 5000 draws", len(seen))
	}
}

func TestPointGenLabelsLearnable(t *testing.T) {
	g := NewPointGen(5, 10, 0.01)
	if g.Dim() != 10 {
		t.Fatalf("dim = %d", g.Dim())
	}
	pts := g.Batch(2000)
	// Run a few epochs of SGD; accuracy should beat random guessing by a lot.
	w := make([]float64, 10)
	lr := 0.1
	for epoch := 0; epoch < 5; epoch++ {
		for _, p := range pts {
			dot := 0.0
			for i := range w {
				dot += w[i] * p.X[i]
			}
			grad := (Sigmoid(p.Y*dot) - 1) * p.Y
			for i := range w {
				w[i] -= lr * grad * p.X[i]
			}
		}
	}
	correct := 0
	for _, p := range pts {
		dot := 0.0
		for i := range w {
			dot += w[i] * p.X[i]
		}
		if (dot >= 0 && p.Y > 0) || (dot < 0 && p.Y < 0) {
			correct++
		}
	}
	acc := float64(correct) / float64(len(pts))
	if acc < 0.85 {
		t.Errorf("LR accuracy %f, want >= 0.85 (data should be learnable)", acc)
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %f", s)
	}
	if s := Sigmoid(100); s < 0.999 {
		t.Errorf("sigmoid(100) = %f", s)
	}
	if s := Sigmoid(-100); s > 0.001 {
		t.Errorf("sigmoid(-100) = %f", s)
	}
}
