// Package workload generates the synthetic inputs used by the experiments:
// Netflix-like movie ratings for collaborative filtering, Zipf-distributed
// keys for the key/value store, natural-language-like text for streaming
// wordcount, and labelled feature vectors for logistic regression.
//
// All generators are deterministic given a seed so experiments are
// repeatable. They substitute for the paper's proprietary datasets (the
// Netflix prize data and a Wikipedia dump) while preserving the access
// patterns that drive performance: skewed key popularity and random
// co-occurrence access.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Rating is one user-item rating event, the input of the CF application
// (Alg. 1 addRating).
type Rating struct {
	User   int
	Item   int
	Rating int // 1..5
}

// RatingGen produces ratings with Zipf-skewed users and items, mimicking the
// head-heavy popularity distribution of the Netflix dataset.
type RatingGen struct {
	rng   *rand.Rand
	users *rand.Zipf
	items *rand.Zipf
	NUser int
	NItem int
}

// NewRatingGen returns a generator over nUsers x nItems with the given seed.
func NewRatingGen(seed int64, nUsers, nItems int) *RatingGen {
	if nUsers < 1 {
		nUsers = 1
	}
	if nItems < 1 {
		nItems = 1
	}
	rng := rand.New(rand.NewSource(seed))
	return &RatingGen{
		rng:   rng,
		users: rand.NewZipf(rng, 1.2, 1.0, uint64(nUsers-1)),
		items: rand.NewZipf(rng, 1.2, 1.0, uint64(nItems-1)),
		NUser: nUsers,
		NItem: nItems,
	}
}

// Next produces the next rating.
func (g *RatingGen) Next() Rating {
	return Rating{
		User:   int(g.users.Uint64()),
		Item:   int(g.items.Uint64()),
		Rating: 1 + g.rng.Intn(5),
	}
}

// Batch produces n ratings.
func (g *RatingGen) Batch(n int) []Rating {
	out := make([]Rating, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// KVOp is one key/value store request.
type KVOp struct {
	Read  bool
	Key   uint64
	Value []byte
}

// KVGen produces key/value operations over a fixed key space with a
// configurable read fraction and value size. Keys are uniform by default so
// that state grows evenly across partitions (matching the paper's KV
// benchmark, which sweeps aggregate state size).
type KVGen struct {
	rng       *rand.Rand
	keys      uint64
	readFrac  float64
	valueSize int
	zipf      *rand.Zipf // optional skew
}

// NewKVGen returns a KV op generator over keySpace keys; readFrac in [0,1]
// selects the fraction of reads; valueSize is the write payload size.
func NewKVGen(seed int64, keySpace uint64, readFrac float64, valueSize int) *KVGen {
	if keySpace == 0 {
		keySpace = 1
	}
	if valueSize <= 0 {
		valueSize = 64
	}
	return &KVGen{
		rng:       rand.New(rand.NewSource(seed)),
		keys:      keySpace,
		readFrac:  readFrac,
		valueSize: valueSize,
	}
}

// Skewed switches key selection to a Zipf distribution with exponent s>1.
func (g *KVGen) Skewed(s float64) *KVGen {
	g.zipf = rand.NewZipf(g.rng, s, 1.0, g.keys-1)
	return g
}

// Next produces the next operation. Write payloads are reused internally by
// value; callers must not retain them across calls if they mutate.
func (g *KVGen) Next() KVOp {
	var key uint64
	if g.zipf != nil {
		key = g.zipf.Uint64()
	} else {
		key = uint64(g.rng.Int63n(int64(g.keys)))
	}
	if g.rng.Float64() < g.readFrac {
		return KVOp{Read: true, Key: key}
	}
	val := make([]byte, g.valueSize)
	for i := range val {
		val[i] = byte(g.rng.Intn(256))
	}
	return KVOp{Key: key, Value: val}
}

// Batch produces n operations.
func (g *KVGen) Batch(n int) []KVOp {
	out := make([]KVOp, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// TextGen produces streams of words drawn from a Zipf-distributed synthetic
// vocabulary, mimicking natural-language word frequencies for the streaming
// wordcount experiment.
type TextGen struct {
	rng   *rand.Rand
	zipf  *rand.Zipf
	vocab []string
}

// NewTextGen returns a generator with vocabSize distinct words.
func NewTextGen(seed int64, vocabSize int) *TextGen {
	if vocabSize < 1 {
		vocabSize = 1
	}
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, vocabSize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%05d", i)
	}
	return &TextGen{
		rng:   rng,
		zipf:  rand.NewZipf(rng, 1.1, 1.0, uint64(vocabSize-1)),
		vocab: vocab,
	}
}

// Word produces the next word.
func (g *TextGen) Word() string {
	return g.vocab[g.zipf.Uint64()]
}

// Line produces a line of n words.
func (g *TextGen) Line(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.Word()
	}
	return out
}

// VocabSize reports the number of distinct words.
func (g *TextGen) VocabSize() int { return len(g.vocab) }

// Point is one labelled example for logistic regression: Label in {-1,+1}.
type Point struct {
	X []float64
	Y float64
}

// PointGen produces linearly separable-ish labelled points: a hidden weight
// vector defines the label with some noise, so LR converges and throughput
// is dominated by the dot products, as in the paper's 100 GB dataset.
type PointGen struct {
	rng    *rand.Rand
	hidden []float64
	dim    int
	noise  float64
}

// NewPointGen returns a generator of dim-dimensional points.
func NewPointGen(seed int64, dim int, noise float64) *PointGen {
	if dim < 1 {
		dim = 1
	}
	rng := rand.New(rand.NewSource(seed))
	hidden := make([]float64, dim)
	for i := range hidden {
		hidden[i] = rng.NormFloat64()
	}
	return &PointGen{rng: rng, hidden: hidden, dim: dim, noise: noise}
}

// Next produces one labelled point.
func (g *PointGen) Next() Point {
	x := make([]float64, g.dim)
	dot := 0.0
	for i := range x {
		x[i] = g.rng.NormFloat64()
		dot += x[i] * g.hidden[i]
	}
	y := 1.0
	if dot+g.noise*g.rng.NormFloat64() < 0 {
		y = -1.0
	}
	return Point{X: x, Y: y}
}

// Batch produces n points.
func (g *PointGen) Batch(n int) []Point {
	out := make([]Point, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Dim reports the dimensionality of generated points.
func (g *PointGen) Dim() int { return g.dim }

// Sigmoid is the logistic function, shared by LR implementations.
func Sigmoid(z float64) float64 {
	return 1.0 / (1.0 + math.Exp(-z))
}
