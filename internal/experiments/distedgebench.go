package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	_ "repro/internal/apps/counter" // registers the counterchain graph
	"repro/internal/cluster"
	"repro/internal/runtime"
	"repro/internal/state"
)

// DistEdgeBenchConfig sizes the cross-worker edge measurement: a two-worker
// counterchain deployment whose dataflow edge is cut between the workers,
// driven once over in-process transports (protocol cost alone) and once
// over real localhost TCP.
type DistEdgeBenchConfig struct {
	Items int // items injected per variant (default 20_000)
	Keys  int // distinct keys, spread across both partitions (default 1024)
	Batch int // coordinator injection batch size (default 256)
}

func (c DistEdgeBenchConfig) withDefaults() DistEdgeBenchConfig {
	if c.Items <= 0 {
		c.Items = 20_000
	}
	if c.Keys <= 0 {
		c.Keys = 1024
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	return c
}

// DistEdgeBenchResult is one transport variant's measurement. Throughput is
// end-to-end (inject through drain), so it includes the coordinator's data
// link, not just the edge; bytes/frames count only worker-to-worker
// RemoteEmit traffic, which is what the flat edge codec is accountable
// for. Per the repo's measurement policy the wall-clock figures are
// context, not asserted floors.
type DistEdgeBenchResult struct {
	Transport       string  `json:"transport"` // "local" or "tcp"
	Items           int     `json:"items"`
	RemoteItems     int64   `json:"remote_items"` // items that crossed the cut edge
	ElapsedMs       int64   `json:"elapsed_ms"`
	ItemsPerSec     float64 `json:"items_per_sec"`
	EdgeBytes       int64   `json:"edge_bytes"`  // RemoteEmit request bytes, sender side
	EdgeFrames      int64   `json:"edge_frames"` // RemoteEmit calls (including retries)
	BytesPerRemote  float64 `json:"edge_bytes_per_remote_item"`
	ItemsPerFrame   float64 `json:"remote_items_per_frame"`
	FinalEdgeLogged int     `json:"final_edge_log_items"` // send-log depth after drain (pre-trim)
}

// countingTransport counts request bytes and frames on a peer link. The
// worker dialer only ever opens peer links for cross-worker edge delivery,
// so everything counted here is RemoteEmit traffic.
type countingTransport struct {
	inner  cluster.Transport
	bytes  *atomic.Int64
	frames *atomic.Int64
}

func (t *countingTransport) Call(req []byte) ([]byte, error) {
	t.bytes.Add(int64(len(req)))
	t.frames.Add(1)
	return t.inner.Call(req)
}

func (t *countingTransport) Close() error { return t.inner.Close() }

// runDistEdgeVariant deploys counterchain on two in-process workers joined
// by the given transport flavor, pushes the configured stream through the
// cut edge and reports throughput plus edge wire cost.
func runDistEdgeVariant(transport string, cfg DistEdgeBenchConfig) (DistEdgeBenchResult, error) {
	res := DistEdgeBenchResult{Transport: transport, Items: cfg.Items}
	var edgeBytes, edgeFrames atomic.Int64

	w0 := runtime.NewWorker()
	defer w0.Close()
	w1 := runtime.NewWorker()
	defer w1.Close()

	var eps []runtime.WorkerEndpoint
	switch transport {
	case "local":
		handlers := map[string]cluster.Handler{"w0": w0.Handler(), "w1": w1.Handler()}
		dial := func(addr string) (cluster.Transport, error) {
			h, ok := handlers[addr]
			if !ok {
				return nil, fmt.Errorf("distedge bench: no worker at %q", addr)
			}
			return &countingTransport{inner: cluster.Local(h, 0), bytes: &edgeBytes, frames: &edgeFrames}, nil
		}
		w0.SetDialer(dial)
		w1.SetDialer(dial)
		eps = []runtime.WorkerEndpoint{
			{Addr: "w0", Data: cluster.Local(w0.Handler(), 0), Control: cluster.Local(w0.Handler(), 0)},
			{Addr: "w1", Data: cluster.Local(w1.Handler(), 0), Control: cluster.Local(w1.Handler(), 0)},
		}
	case "tcp":
		srv0, err := cluster.Serve("127.0.0.1:0", w0.Handler())
		if err != nil {
			return res, err
		}
		defer srv0.Close()
		srv1, err := cluster.Serve("127.0.0.1:0", w1.Handler())
		if err != nil {
			return res, err
		}
		defer srv1.Close()
		dial := func(addr string) (cluster.Transport, error) {
			c, err := cluster.Dial(addr)
			if err != nil {
				return nil, err
			}
			c.SetCallTimeout(10 * time.Second)
			return &countingTransport{inner: c, bytes: &edgeBytes, frames: &edgeFrames}, nil
		}
		w0.SetDialer(dial)
		w1.SetDialer(dial)
		mkEp := func(addr string) (runtime.WorkerEndpoint, error) {
			data, err := cluster.Dial(addr)
			if err != nil {
				return runtime.WorkerEndpoint{}, err
			}
			data.SetCallTimeout(10 * time.Second)
			ctrl, err := cluster.Dial(addr)
			if err != nil {
				return runtime.WorkerEndpoint{}, err
			}
			ctrl.SetCallTimeout(10 * time.Second)
			return runtime.WorkerEndpoint{Addr: addr, Data: data, Control: ctrl}, nil
		}
		ep0, err := mkEp(srv0.Addr())
		if err != nil {
			return res, err
		}
		ep1, err := mkEp(srv1.Addr())
		if err != nil {
			return res, err
		}
		eps = []runtime.WorkerEndpoint{ep0, ep1}
	default:
		return res, fmt.Errorf("distedge bench: unknown transport %q", transport)
	}

	coord, err := runtime.NewCoordinator("counterchain", eps, runtime.CoordOptions{
		Partitions: map[string]int{"counts": 2},
		BatchSize:  64,
	})
	if err != nil {
		return res, err
	}
	defer coord.Close()

	// Every item enters at worker 0's ingest; the ones keyed to worker 1's
	// counts partition cross the cut edge.
	for k := 0; k < cfg.Keys; k++ {
		if state.PartitionKey(uint64(k), 2) == 1 {
			res.RemoteItems += int64(cfg.Items/cfg.Keys + boolInt(k < cfg.Items%cfg.Keys))
		}
	}

	start := time.Now()
	batch := make([]runtime.InjectItem, 0, cfg.Batch)
	for i := 0; i < cfg.Items; i++ {
		batch = append(batch, runtime.InjectItem{Key: uint64(i % cfg.Keys)})
		if len(batch) == cfg.Batch || i == cfg.Items-1 {
			if err := coord.InjectBatch("ingest", batch); err != nil {
				return res, fmt.Errorf("distedge bench (%s): inject: %w", transport, err)
			}
			batch = batch[:0]
		}
	}
	if !coord.Drain(60 * time.Second) {
		return res, fmt.Errorf("distedge bench (%s): deployment did not quiesce", transport)
	}
	elapsed := time.Since(start)

	res.ElapsedMs = elapsed.Milliseconds()
	res.ItemsPerSec = float64(cfg.Items) / elapsed.Seconds()
	res.EdgeBytes = edgeBytes.Load()
	res.EdgeFrames = edgeFrames.Load()
	if res.RemoteItems > 0 {
		res.BytesPerRemote = float64(res.EdgeBytes) / float64(res.RemoteItems)
	}
	if res.EdgeFrames > 0 {
		res.ItemsPerFrame = float64(res.RemoteItems) / float64(res.EdgeFrames)
	}
	res.FinalEdgeLogged = w0.PendingEdgeItems() + w1.PendingEdgeItems()

	// Sanity: exactly cfg.Items increments must have landed, or the
	// throughput number above measured a broken deployment.
	var processed int64
	if processed, err = coord.Processed("inc"); err != nil {
		return res, err
	}
	if processed != int64(cfg.Items) {
		return res, fmt.Errorf("distedge bench (%s): processed %d increments, want %d", transport, processed, cfg.Items)
	}
	return res, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// RunDistEdgeBench measures the cut-edge dataflow over both transports.
func RunDistEdgeBench(cfg DistEdgeBenchConfig) ([]DistEdgeBenchResult, error) {
	cfg = cfg.withDefaults()
	var results []DistEdgeBenchResult
	for _, tr := range []string{"local", "tcp"} {
		r, err := runDistEdgeVariant(tr, cfg)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// WriteDistEdgeBench runs the cross-worker edge benchmark, prints a summary
// table, and (when outPath is non-empty) writes the structured results as
// JSON for CI and the perf ledger.
func WriteDistEdgeBench(w io.Writer, cfg DistEdgeBenchConfig, outPath string) error {
	results, err := RunDistEdgeBench(cfg)
	if err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	tbl := &Table{
		Title:  "cross-worker edge: two-worker counterchain, cut partitioned edge",
		Note:   fmt.Sprintf("%d items over %d keys, coordinator batch %d", cfg.Items, cfg.Keys, cfg.Batch),
		Header: []string{"transport", "items/s", "remote items", "edge B/item", "items/frame", "edge frames"},
	}
	for _, r := range results {
		tbl.Rows = append(tbl.Rows, []string{
			r.Transport,
			fmt.Sprintf("%.0f", r.ItemsPerSec),
			fmt.Sprintf("%d", r.RemoteItems),
			fmt.Sprintf("%.1f", r.BytesPerRemote),
			fmt.Sprintf("%.1f", r.ItemsPerFrame),
			fmt.Sprintf("%d", r.EdgeFrames),
		})
	}
	tbl.Fprint(w)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return writeRecord(outPath, data)
}
