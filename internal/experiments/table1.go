package experiments

// Table1 reproduces the paper's design-space taxonomy of data-parallel
// processing frameworks (Table 1). It is static by nature: the rows
// classify systems along the axes the paper argues SDGs uniquely combine —
// explicit large mutable state, fine-grained updates, pipelined low-latency
// execution, iteration, and asynchronous local checkpoints.
func Table1() *Table {
	return &Table{
		Title: "Table 1: Design space of data-parallel processing frameworks",
		Note:  "reproduced from the paper; the SDG row is what this repository implements",
		Header: []string{
			"Model", "System", "Programming", "State repr.", "Large state",
			"Fine-grained", "Execution", "Low latency", "Iteration", "Failure recovery",
		},
		Rows: [][]string{
			{"Stateless dataflow", "MapReduce", "map/reduce", "as data", "n/a", "no", "scheduled", "no", "no", "recompute"},
			{"Stateless dataflow", "DryadLINQ", "functional", "as data", "n/a", "no", "scheduled", "no", "yes", "recompute"},
			{"Stateless dataflow", "Spark", "functional", "as data", "n/a", "no", "hybrid", "no", "yes", "recompute"},
			{"Stateless dataflow", "CIEL", "imperative", "as data", "n/a", "no", "scheduled", "no", "yes", "recompute"},
			{"Incremental dataflow", "HaLoop", "map/reduce", "cache", "yes", "no", "scheduled", "no", "yes", "recompute"},
			{"Incremental dataflow", "Incoop", "map/reduce", "cache", "yes", "no", "scheduled", "no", "no", "recompute"},
			{"Incremental dataflow", "Nectar", "functional", "cache", "yes", "no", "scheduled", "no", "no", "recompute"},
			{"Incremental dataflow", "CBP", "dataflow", "loopback", "yes", "yes", "scheduled", "no", "no", "recompute"},
			{"Batched dataflow", "Comet", "functional", "as data", "n/a", "no", "scheduled", "yes", "no", "recompute"},
			{"Batched dataflow", "D-Streams", "functional", "as data", "n/a", "no", "hybrid", "yes", "yes", "recompute"},
			{"Batched dataflow", "Naiad", "dataflow", "explicit", "no", "yes", "hybrid", "yes", "yes", "sync. global checkpoints"},
			{"Continuous dataflow", "Storm, S4", "dataflow", "as data", "n/a", "no", "pipelined", "yes", "no", "recompute"},
			{"Continuous dataflow", "SEEP", "dataflow", "explicit", "no", "yes", "pipelined", "yes", "no", "sync. local checkpoints"},
			{"Parallel in-memory", "Piccolo", "imperative", "explicit", "yes", "yes", "n/a", "yes", "yes", "async. global checkpoints"},
			{"Stateful dataflow", "SDG (this repo)", "imperative", "explicit", "yes", "yes", "pipelined", "yes", "yes", "async. local checkpoints"},
		},
	}
}
