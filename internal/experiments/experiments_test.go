package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tiny keeps test runs short; shape assertions tolerate the noise.
var tiny = Scale{PointDuration: 250 * time.Millisecond, Clients: 4}

func TestTable1Structure(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 15 {
		t.Fatalf("Table 1 rows = %d, want 15 systems", len(tbl.Rows))
	}
	out := tbl.String()
	for _, sys := range []string{"MapReduce", "Spark", "Naiad", "SEEP", "Piccolo", "SDG"} {
		if !strings.Contains(out, sys) {
			t.Errorf("table missing %q", sys)
		}
	}
	// The SDG row must claim the paper's unique combination.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[1] != "SDG (this repo)" || last[9] != "async. local checkpoints" {
		t.Errorf("SDG row = %v", last)
	}
}

func TestFig5Shape(t *testing.T) {
	rows, tbl, err := Fig5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Errorf("ratio %s: zero throughput", r.Ratio)
		}
	}
	// Read latency must be recorded for read-heavy points.
	if rows[4].Latency.P50 <= 0 {
		t.Error("no latency recorded at 5:1")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		// Degradation ratios are only meaningful when each measurement
		// window spans several checkpoint intervals; the short path trims
		// the sweep and checks structure only.
		rows, _, err := fig6(tiny, []int64{1 << 20, 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]int{}
		for _, r := range rows {
			seen[r.System]++
			if r.Throughput <= 0 {
				t.Errorf("%s @%d: zero throughput", r.System, r.StateBytes)
			}
		}
		for _, sys := range []string{"SDG", "Naiad-Disk", "Naiad-NoDisk"} {
			if seen[sys] != 2 {
				t.Errorf("system %s: %d rows, want 2", sys, seen[sys])
			}
		}
		return
	}
	// Full mode: each point spans 3 checkpoint intervals (fig6Interval is
	// 300ms), so at least one Naiad stop-the-world checkpoint is guaranteed
	// to land inside every measurement window. The collapse assertions work
	// on the observed checkpoint pauses rather than throughput ratios:
	// pauses are floored by the modelled disk bandwidth (an exact sleep of
	// size/BW), so they hold on any machine, whereas throughput ratios on a
	// loaded single-core CI box measure scheduler noise — the engine is
	// backpressure-gated and simply catches up after a stall (observed
	// flake: degradation ratio 1.03 vs 1.01).
	scale := Scale{PointDuration: 3 * fig6Interval, Clients: 4}
	rows, _, err := fig6(scale, fig6Sizes)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[int64]Fig6Row{}
	for _, r := range rows {
		if byKey[r.System] == nil {
			byKey[r.System] = map[int64]Fig6Row{}
		}
		byKey[r.System][r.StateBytes] = r
		if r.Throughput <= 0 {
			t.Errorf("%s @%d: zero throughput", r.System, r.StateBytes)
		}
	}
	small, large := int64(1<<20), int64(16<<20)
	// SDG stays roughly flat: large-state throughput within 2.5x of small
	// (paper: unaffected; the slack absorbs scheduler noise at test scale).
	sdg := byKey["SDG"]
	if sdg[large].Throughput < sdg[small].Throughput/2.5 {
		t.Errorf("SDG collapsed with state: %.0f -> %.0f",
			sdg[small].Throughput, sdg[large].Throughput)
	}
	// Naiad-Disk's stop-the-world pause scales with state: at 16MB the
	// modelled disk write alone is ~350ms (the serialised payload is ~70%
	// of the accounted state size), and 16x the 1MB pause by construction.
	nd := byKey["Naiad-Disk"]
	floor := time.Duration(float64(large) * 0.7 / fig6DiskBW * float64(time.Second))
	if nd[large].WorstPause < floor {
		t.Errorf("Naiad-Disk large-state pause %v below modelled disk floor %v",
			nd[large].WorstPause, floor)
	}
	if nd[small].WorstPause <= 0 {
		t.Error("Naiad-Disk took no checkpoint inside the small-state window")
	} else if nd[large].WorstPause < 8*nd[small].WorstPause {
		t.Errorf("Naiad-Disk pause should grow ~16x with state: %v -> %v",
			nd[small].WorstPause, nd[large].WorstPause)
	}
	// The RAM-disk variant pauses only for serialisation, far below the
	// disk-bound pause — the disk is what collapses Naiad-Disk.
	ndisk := byKey["Naiad-NoDisk"]
	if ndisk[large].WorstPause >= nd[large].WorstPause {
		t.Errorf("Naiad-NoDisk pause %v should be below Naiad-Disk %v",
			ndisk[large].WorstPause, nd[large].WorstPause)
	}
	// SDG's dirty-state protocol never stalls requests for a whole-state
	// write: its p95 at large state stays below Naiad-Disk's single pause.
	if sdg[large].P95 >= nd[large].WorstPause {
		t.Errorf("SDG p95 %v should beat Naiad-Disk's stop-the-world pause %v",
			sdg[large].P95, nd[large].WorstPause)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, _, err := Fig7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if testing.Short() {
		return // scaling ratios are meaningless on race-slowed CI machines
	}
	// Throughput grows with nodes (allowing noise: the 8-node point must
	// beat the 1-node point by at least 1.5x).
	first, last := rows[0], rows[len(rows)-1]
	if last.Throughput < first.Throughput*1.5 {
		t.Errorf("no scaling: %d nodes %.0f -> %d nodes %.0f",
			first.Nodes, first.Throughput, last.Nodes, last.Throughput)
	}
	for _, r := range rows {
		if r.Latency.P50 <= 0 {
			t.Errorf("nodes=%d: no latency", r.Nodes)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows, _, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	get := func(sys string, win time.Duration) Fig8Row {
		for _, r := range rows {
			if r.System == sys && r.Window == win {
				return r
			}
		}
		t.Fatalf("missing row %s@%v", sys, win)
		return Fig8Row{}
	}
	smallest, largest := 5*time.Millisecond, 150*time.Millisecond
	if testing.Short() {
		// Sustainability is a timing judgement; structure only under -short.
		get("SDG", smallest)
		get("StreamingSpark", largest)
		return
	}
	// SDG sustains every window.
	for _, r := range rows {
		if r.System == "SDG" && !r.Sustainable {
			t.Errorf("SDG unsustainable at %v", r.Window)
		}
	}
	// Streaming Spark collapses at the smallest window but sustains the
	// largest.
	if get("StreamingSpark", smallest).Sustainable {
		t.Error("StreamingSpark should collapse at the smallest window")
	}
	if !get("StreamingSpark", largest).Sustainable {
		t.Error("StreamingSpark should sustain the largest window")
	}
	// Naiad-HighThroughput cannot sustain the smallest window either.
	if get("Naiad-HighThroughput", smallest).Sustainable {
		t.Error("Naiad-HighThroughput should fail the smallest window")
	}
}

func TestFig9Shape(t *testing.T) {
	rows, _, err := Fig9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	sdg := map[int]float64{}
	spark := map[int]float64{}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Errorf("%s@%d: zero throughput", r.System, r.Nodes)
		}
		if r.System == "SDG" {
			sdg[r.Nodes] = r.Throughput
		} else {
			spark[r.Nodes] = r.Throughput
		}
	}
	if testing.Short() {
		return // scaling ratios are meaningless on race-slowed CI machines
	}
	// Both scale with workers; SDG at least matches Spark at max width.
	if sdg[4] < sdg[1] {
		t.Errorf("SDG did not scale: %f -> %f", sdg[1], sdg[4])
	}
	if spark[4] < spark[1] {
		t.Errorf("Spark did not scale: %f -> %f", spark[1], spark[4])
	}
	if sdg[4] < spark[4]*0.8 {
		t.Errorf("SDG (%f) should be at least comparable to Spark (%f)", sdg[4], spark[4])
	}
}

func TestFig11Shape(t *testing.T) {
	rows, _, err := Fig11(tiny)
	if err != nil {
		t.Fatal(err)
	}
	get := func(size int64, m, n int) time.Duration {
		for _, r := range rows {
			if r.StateBytes == size && r.M == m && r.N == n {
				return r.Recovery
			}
		}
		t.Fatalf("missing %d %d-%d", size, m, n)
		return 0
	}
	large := int64(24 << 20)
	if testing.Short() {
		get(large, 2, 2) // rows present for every strategy
		get(large, 1, 1)
		return
	}
	// 2-to-2 must beat 1-to-1 at the largest state.
	if get(large, 2, 2) >= get(large, 1, 1) {
		t.Errorf("2-to-2 (%v) should beat 1-to-1 (%v)", get(large, 2, 2), get(large, 1, 1))
	}
	// Recovery time grows with state under the slowest strategy.
	if get(large, 1, 1) <= get(2<<20, 1, 1) {
		t.Errorf("1-to-1 recovery should grow with state: %v vs %v",
			get(2<<20, 1, 1), get(large, 1, 1))
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sync-vs-async checkpoint sweep needs tens of seconds of stall sampling")
	}
	rows, _, err := Fig12(tiny)
	if err != nil {
		t.Fatal(err)
	}
	tput := map[string]map[int64]float64{}
	worst := map[string]map[int64]time.Duration{}
	for _, r := range rows {
		if tput[r.Mode] == nil {
			tput[r.Mode] = map[int64]float64{}
			worst[r.Mode] = map[int64]time.Duration{}
		}
		tput[r.Mode][r.StateBytes] = r.Throughput
		worst[r.Mode][r.StateBytes] = r.Worst
	}
	large := int64(16 << 20)
	// Async beats sync on throughput and worst-case latency at large state.
	if tput["async"][large] <= tput["sync"][large] {
		t.Errorf("async tput %.0f should beat sync %.0f at large state",
			tput["async"][large], tput["sync"][large])
	}
	if worst["async"][large] >= worst["sync"][large] {
		t.Errorf("async worst-case %v should beat sync %v at large state",
			worst["async"][large], worst["sync"][large])
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("frequency/size sweep is the longest experiment (~1 min)")
	}
	freqRows, sizeRows, tbl, err := Fig13(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
	// No-FT must have the lowest p95 in the frequency sweep.
	var noFT Fig13Row
	for _, r := range freqRows {
		if r.Label == "No FT" {
			noFT = r
		}
	}
	for _, r := range freqRows {
		if r.Label == "No FT" {
			continue
		}
		if r.Latency.P95 < noFT.Latency.P95/4 {
			t.Errorf("checkpointing at %s has implausibly lower p95 than No FT", r.Label)
		}
	}
	if len(sizeRows) < 3 {
		t.Fatalf("size rows = %d", len(sizeRows))
	}
	// Checkpointing the largest state must produce worst-case stalls far
	// beyond the typical tail (merge locks + disk writes). The No-FT
	// baseline's own maximum is too noisy on a shared host to compare
	// against directly (a single scheduler hiccup dominates it), so the
	// assertion is against the run's own distribution.
	largest := sizeRows[len(sizeRows)-1]
	if largest.Worst < time.Millisecond {
		t.Errorf("largest-state worst %v should show millisecond-scale checkpoint stalls", largest.Worst)
	}
	if largest.Latency.P95 > 0 && largest.Worst < 2*largest.Latency.P95 {
		t.Errorf("largest-state worst %v should clearly exceed its p95 %v",
			largest.Worst, largest.Latency.P95)
	}
}

func TestRunnerKnowsAllExperiments(t *testing.T) {
	r := &Runner{Scale: tiny, Out: discard{}}
	if err := r.Run("0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("nope"); err == nil {
		t.Fatal("unknown id should fail")
	}
	if len(Known) != 10 {
		t.Fatalf("Known = %v", Known)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestFig10Shape(t *testing.T) {
	series, events, tbl, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
	if testing.Short() {
		// The controller's cooldown is wall-clock-driven; on a race-slowed
		// machine the second scale action may not fire inside the window.
		if len(series) == 0 {
			t.Fatal("no timeline samples")
		}
		return
	}
	// Both scaling actions must have fired on the update TE.
	if len(events) < 2 {
		t.Fatalf("scale events = %+v, want 2 (bottleneck + straggler mitigation)", events)
	}
	for _, e := range events {
		if e.TE != "updateCoOcc" {
			t.Errorf("scaled %q, want updateCoOcc", e.TE)
		}
	}
	// The paper's staircase: throughput after the final scale-up must
	// clearly beat the single-instance phase.
	avg := func(points []Fig10Point, inst int) (float64, int) {
		sum, n := 0.0, 0
		for _, p := range points {
			if p.Nodes == inst {
				sum += p.Throughput
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	}
	phase1, n1 := avg(series, 1)
	phase3, n3 := avg(series, 3)
	if n1 == 0 || n3 == 0 {
		t.Fatalf("missing phases: %d one-instance samples, %d three-instance samples", n1, n3)
	}
	if phase3 < phase1*1.5 {
		t.Errorf("straggler mitigation gain too small: %.0f -> %.0f updates/s", phase1, phase3)
	}
}

func TestCheckpointBenchSmoke(t *testing.T) {
	// Tiny config: this guards the CI perf-record path (table + JSON), not
	// the numbers; the acceptance-scale ratio lives in internal/checkpoint.
	out := filepath.Join(t.TempDir(), "BENCH_checkpoint.json")
	cfg := CheckpointBenchConfig{Keys: 2000, Epochs: 2}
	var buf strings.Builder
	if err := WriteCheckpointBench(&buf, cfg, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []CheckpointBenchResult
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d backends, want 2", len(results))
	}
	for _, r := range results {
		if r.DeltaBytesPerEpoch <= 0 || r.FullBytesPerEpoch <= r.DeltaBytesPerEpoch {
			t.Fatalf("%s: full=%d delta=%d", r.Backend, r.FullBytesPerEpoch, r.DeltaBytesPerEpoch)
		}
		// Even at smoke scale, 1% churn must save well over 10x.
		if r.BytesRatio < 10 {
			t.Fatalf("%s: bytes ratio %.1f < 10", r.Backend, r.BytesRatio)
		}
	}
	if !strings.Contains(buf.String(), "full vs delta") {
		t.Fatal("summary table missing")
	}
}

func TestPipeBenchSmoke(t *testing.T) {
	// Tiny config: guards the CI perf-record path (table + JSON) and the
	// alloc trajectory's shape; the hard allocation bound lives in
	// internal/runtime's AllocsPerRun guards.
	out := filepath.Join(t.TempDir(), "BENCH_throughput.json")
	cfg := PipeBenchConfig{Items: 400, BatchSizes: []int{1, 64}}
	var buf strings.Builder
	if err := WritePipeBench(&buf, cfg, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []PipeBenchResult
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d batch sizes, want 2", len(results))
	}
	for _, r := range results {
		if r.Delivered <= 0 || r.ItemsPerSec <= 0 {
			t.Fatalf("batch=%d: empty measurement %+v", r.BatchSize, r)
		}
	}
	// Batching must cut allocations per item, even at smoke scale.
	if results[1].AllocsPerItem >= results[0].AllocsPerItem {
		t.Fatalf("allocs/item did not drop: batch=1 %.3f, batch=64 %.3f",
			results[0].AllocsPerItem, results[1].AllocsPerItem)
	}
	if !strings.Contains(buf.String(), "micro-batch sweep") {
		t.Fatal("summary table missing")
	}
}

func TestElasticBenchSmoke(t *testing.T) {
	// Tiny sawtooth: guards the CI record path and the full-cycle
	// elasticity invariants — the scaler grows under the flood, retires
	// back to the floor in the trough, and no admitted item is lost or
	// duplicated across either transition. Pause times and goodput are
	// wall-clock context, not asserted.
	out := filepath.Join(t.TempDir(), "BENCH_elasticity.json")
	// The flood must span many 2ms scan intervals or the scaler never sees
	// the parked depth; default per-item work with a modest item count
	// keeps it tens of milliseconds.
	cfg := ElasticBenchConfig{Items: 600, Cycles: 1, MaxInstances: 2}
	var buf strings.Builder
	if err := WriteElasticBench(&buf, cfg, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec ElasticBenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.DeliveredTotal != rec.OfferedTotal {
		t.Fatalf("delivered %d != offered %d", rec.DeliveredTotal, rec.OfferedTotal)
	}
	if rec.PeakInstances < 2 {
		t.Fatalf("flood never scaled up: peak = %d", rec.PeakInstances)
	}
	if rec.ScaleDowns < 1 || rec.FinalInstances != 1 {
		t.Fatalf("trough never scaled in: downs = %d, final = %d", rec.ScaleDowns, rec.FinalInstances)
	}
	if rec.MergePauses < 1 {
		t.Fatal("scale-in recorded no merge pause")
	}
	if len(rec.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(rec.Phases))
	}
	if !strings.Contains(buf.String(), "load sawtooth") {
		t.Fatal("summary table missing")
	}
}

func TestBPBenchSmoke(t *testing.T) {
	// Tiny config: guards the CI perf-record path (table + JSON) and the
	// flow-control invariants — every offered item is either accepted or
	// shed, and everything accepted is delivered. Rates and latency
	// percentiles are wall-clock context, not asserted (single-core
	// measurement policy).
	out := filepath.Join(t.TempDir(), "BENCH_backpressure.json")
	cfg := BPBenchConfig{Items: 600, Levels: []float64{0.5, 1, 2}, WorkIters: 2000}
	var buf strings.Builder
	if err := WriteBPBench(&buf, cfg, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec BPBenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Capacity <= 0 {
		t.Fatalf("calibrated capacity = %f", rec.Capacity)
	}
	if len(rec.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(rec.Levels))
	}
	for _, r := range rec.Levels {
		if r.Accepted+r.Shed != int64(r.Offered) {
			t.Fatalf("level %.1fx: accepted %d + shed %d != offered %d",
				r.Level, r.Accepted, r.Shed, r.Offered)
		}
		if r.Delivered != r.Accepted {
			t.Fatalf("level %.1fx: delivered %d != accepted %d (admitted items lost)",
				r.Level, r.Delivered, r.Accepted)
		}
		if r.Goodput <= 0 {
			t.Fatalf("level %.1fx: empty measurement %+v", r.Level, r)
		}
	}
	if !strings.Contains(buf.String(), "offered load vs goodput") {
		t.Fatal("summary table missing")
	}
}
