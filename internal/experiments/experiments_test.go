package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny keeps test runs short; shape assertions tolerate the noise.
var tiny = Scale{PointDuration: 250 * time.Millisecond, Clients: 4}

func TestTable1Structure(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 15 {
		t.Fatalf("Table 1 rows = %d, want 15 systems", len(tbl.Rows))
	}
	out := tbl.String()
	for _, sys := range []string{"MapReduce", "Spark", "Naiad", "SEEP", "Piccolo", "SDG"} {
		if !strings.Contains(out, sys) {
			t.Errorf("table missing %q", sys)
		}
	}
	// The SDG row must claim the paper's unique combination.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[1] != "SDG (this repo)" || last[9] != "async. local checkpoints" {
		t.Errorf("SDG row = %v", last)
	}
}

func TestFig5Shape(t *testing.T) {
	rows, tbl, err := Fig5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Errorf("ratio %s: zero throughput", r.Ratio)
		}
	}
	// Read latency must be recorded for read-heavy points.
	if rows[4].Latency.P50 <= 0 {
		t.Error("no latency recorded at 5:1")
	}
}

func TestFig6Shape(t *testing.T) {
	rows, _, err := Fig6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[int64]Fig6Row{}
	for _, r := range rows {
		if byKey[r.System] == nil {
			byKey[r.System] = map[int64]Fig6Row{}
		}
		byKey[r.System][r.StateBytes] = r
		if r.Throughput <= 0 {
			t.Errorf("%s @%d: zero throughput", r.System, r.StateBytes)
		}
	}
	small, large := int64(1<<20), int64(16<<20)
	// SDG stays roughly flat: large-state throughput within 2x of small.
	sdg := byKey["SDG"]
	if sdg[large].Throughput < sdg[small].Throughput/2 {
		t.Errorf("SDG collapsed with state: %.0f -> %.0f",
			sdg[small].Throughput, sdg[large].Throughput)
	}
	// Naiad-Disk must lose much more throughput than SDG at large state.
	nd := byKey["Naiad-Disk"]
	sdgRatio := sdg[large].Throughput / sdg[small].Throughput
	ndRatio := nd[large].Throughput / nd[small].Throughput
	if ndRatio >= sdgRatio {
		t.Errorf("Naiad-Disk ratio %.2f should degrade more than SDG %.2f", ndRatio, sdgRatio)
	}
	// At large state, SDG p95 latency beats Naiad-Disk's (stop-the-world).
	if sdg[large].P95 >= nd[large].P95 {
		t.Errorf("SDG p95 %v should beat Naiad-Disk %v at large state", sdg[large].P95, nd[large].P95)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, _, err := Fig7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Throughput grows with nodes (allowing noise: the 8-node point must
	// beat the 1-node point by at least 1.5x).
	first, last := rows[0], rows[len(rows)-1]
	if last.Throughput < first.Throughput*1.5 {
		t.Errorf("no scaling: %d nodes %.0f -> %d nodes %.0f",
			first.Nodes, first.Throughput, last.Nodes, last.Throughput)
	}
	for _, r := range rows {
		if r.Latency.P50 <= 0 {
			t.Errorf("nodes=%d: no latency", r.Nodes)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows, _, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	get := func(sys string, win time.Duration) Fig8Row {
		for _, r := range rows {
			if r.System == sys && r.Window == win {
				return r
			}
		}
		t.Fatalf("missing row %s@%v", sys, win)
		return Fig8Row{}
	}
	smallest, largest := 5*time.Millisecond, 150*time.Millisecond
	// SDG sustains every window.
	for _, r := range rows {
		if r.System == "SDG" && !r.Sustainable {
			t.Errorf("SDG unsustainable at %v", r.Window)
		}
	}
	// Streaming Spark collapses at the smallest window but sustains the
	// largest.
	if get("StreamingSpark", smallest).Sustainable {
		t.Error("StreamingSpark should collapse at the smallest window")
	}
	if !get("StreamingSpark", largest).Sustainable {
		t.Error("StreamingSpark should sustain the largest window")
	}
	// Naiad-HighThroughput cannot sustain the smallest window either.
	if get("Naiad-HighThroughput", smallest).Sustainable {
		t.Error("Naiad-HighThroughput should fail the smallest window")
	}
}

func TestFig9Shape(t *testing.T) {
	rows, _, err := Fig9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	sdg := map[int]float64{}
	spark := map[int]float64{}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Errorf("%s@%d: zero throughput", r.System, r.Nodes)
		}
		if r.System == "SDG" {
			sdg[r.Nodes] = r.Throughput
		} else {
			spark[r.Nodes] = r.Throughput
		}
	}
	// Both scale with workers; SDG at least matches Spark at max width.
	if sdg[4] < sdg[1] {
		t.Errorf("SDG did not scale: %f -> %f", sdg[1], sdg[4])
	}
	if spark[4] < spark[1] {
		t.Errorf("Spark did not scale: %f -> %f", spark[1], spark[4])
	}
	if sdg[4] < spark[4]*0.8 {
		t.Errorf("SDG (%f) should be at least comparable to Spark (%f)", sdg[4], spark[4])
	}
}

func TestFig11Shape(t *testing.T) {
	rows, _, err := Fig11(tiny)
	if err != nil {
		t.Fatal(err)
	}
	get := func(size int64, m, n int) time.Duration {
		for _, r := range rows {
			if r.StateBytes == size && r.M == m && r.N == n {
				return r.Recovery
			}
		}
		t.Fatalf("missing %d %d-%d", size, m, n)
		return 0
	}
	large := int64(24 << 20)
	// 2-to-2 must beat 1-to-1 at the largest state.
	if get(large, 2, 2) >= get(large, 1, 1) {
		t.Errorf("2-to-2 (%v) should beat 1-to-1 (%v)", get(large, 2, 2), get(large, 1, 1))
	}
	// Recovery time grows with state under the slowest strategy.
	if get(large, 1, 1) <= get(2<<20, 1, 1) {
		t.Errorf("1-to-1 recovery should grow with state: %v vs %v",
			get(2<<20, 1, 1), get(large, 1, 1))
	}
}

func TestFig12Shape(t *testing.T) {
	rows, _, err := Fig12(tiny)
	if err != nil {
		t.Fatal(err)
	}
	tput := map[string]map[int64]float64{}
	worst := map[string]map[int64]time.Duration{}
	for _, r := range rows {
		if tput[r.Mode] == nil {
			tput[r.Mode] = map[int64]float64{}
			worst[r.Mode] = map[int64]time.Duration{}
		}
		tput[r.Mode][r.StateBytes] = r.Throughput
		worst[r.Mode][r.StateBytes] = r.Worst
	}
	large := int64(16 << 20)
	// Async beats sync on throughput and worst-case latency at large state.
	if tput["async"][large] <= tput["sync"][large] {
		t.Errorf("async tput %.0f should beat sync %.0f at large state",
			tput["async"][large], tput["sync"][large])
	}
	if worst["async"][large] >= worst["sync"][large] {
		t.Errorf("async worst-case %v should beat sync %v at large state",
			worst["async"][large], worst["sync"][large])
	}
}

func TestFig13Shape(t *testing.T) {
	freqRows, sizeRows, tbl, err := Fig13(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
	// No-FT must have the lowest p95 in the frequency sweep.
	var noFT Fig13Row
	for _, r := range freqRows {
		if r.Label == "No FT" {
			noFT = r
		}
	}
	for _, r := range freqRows {
		if r.Label == "No FT" {
			continue
		}
		if r.Latency.P95 < noFT.Latency.P95/4 {
			t.Errorf("checkpointing at %s has implausibly lower p95 than No FT", r.Label)
		}
	}
	if len(sizeRows) < 3 {
		t.Fatalf("size rows = %d", len(sizeRows))
	}
	// Checkpointing the largest state must produce worst-case stalls far
	// beyond the typical tail (merge locks + disk writes). The No-FT
	// baseline's own maximum is too noisy on a shared host to compare
	// against directly (a single scheduler hiccup dominates it), so the
	// assertion is against the run's own distribution.
	largest := sizeRows[len(sizeRows)-1]
	if largest.Worst < time.Millisecond {
		t.Errorf("largest-state worst %v should show millisecond-scale checkpoint stalls", largest.Worst)
	}
	if largest.Latency.P95 > 0 && largest.Worst < 2*largest.Latency.P95 {
		t.Errorf("largest-state worst %v should clearly exceed its p95 %v",
			largest.Worst, largest.Latency.P95)
	}
}

func TestRunnerKnowsAllExperiments(t *testing.T) {
	r := &Runner{Scale: tiny, Out: discard{}}
	if err := r.Run("0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("nope"); err == nil {
		t.Fatal("unknown id should fail")
	}
	if len(Known) != 10 {
		t.Fatalf("Known = %v", Known)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestFig10Shape(t *testing.T) {
	series, events, tbl, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
	// Both scaling actions must have fired on the update TE.
	if len(events) < 2 {
		t.Fatalf("scale events = %+v, want 2 (bottleneck + straggler mitigation)", events)
	}
	for _, e := range events {
		if e.TE != "updateCoOcc" {
			t.Errorf("scaled %q, want updateCoOcc", e.TE)
		}
	}
	// The paper's staircase: throughput after the final scale-up must
	// clearly beat the single-instance phase.
	avg := func(points []Fig10Point, inst int) (float64, int) {
		sum, n := 0.0, 0
		for _, p := range points {
			if p.Nodes == inst {
				sum += p.Throughput
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	}
	phase1, n1 := avg(series, 1)
	phase3, n3 := avg(series, 3)
	if n1 == 0 || n3 == 0 {
		t.Fatalf("missing phases: %d one-instance samples, %d three-instance samples", n1, n3)
	}
	if phase3 < phase1*1.5 {
		t.Errorf("straggler mitigation gain too small: %.0f -> %.0f updates/s", phase1, phase3)
	}
}
