package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	goruntime "runtime"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// WireBenchConfig sizes the gob-vs-flat wire codec measurement.
type WireBenchConfig struct {
	Iters      int // codec round trips per scenario (default 2000)
	ValueBytes int // payload bytes per item value (default 32)
}

func (c WireBenchConfig) withDefaults() WireBenchConfig {
	if c.Iters <= 0 {
		c.Iters = 2000
	}
	if c.ValueBytes <= 0 {
		// Generous for the kv demo's ~8-byte values but small enough that
		// the measurement tracks codec overhead rather than the raw value
		// payload both encodings must carry.
		c.ValueBytes = 32
	}
	return c
}

// WireBenchResult compares the two payload encodings for one message
// shape. Bytes per message and allocs per op are deterministic; ns/op is
// context (single-core CI boxes make wall-clock ratios unstable, per the
// repo's measurement policy).
type WireBenchResult struct {
	Scenario        string  `json:"scenario"`
	Items           int     `json:"items_per_msg"`
	ValueBytes      int     `json:"value_bytes"`
	GobBytesPerMsg  int     `json:"gob_bytes_per_msg"`
	FlatBytesPerMsg int     `json:"flat_bytes_per_msg"`
	BytesRatio      float64 `json:"gob_to_flat_bytes_ratio"`
	GobNsPerOp      int64   `json:"gob_ns_per_op"`
	FlatNsPerOp     int64   `json:"flat_ns_per_op"`
	GobAllocsPerOp  float64 `json:"gob_allocs_per_op"`
	FlatAllocsPerOp float64 `json:"flat_allocs_per_op"`
	AllocsRatio     float64 `json:"gob_to_flat_allocs_ratio"`
}

// Codec performance floors, enforced on the Inject and Call scenarios so a
// regression fails the bench run loudly instead of silently eroding the
// reason the flat path exists.
const (
	wireBytesFloor  = 3.0 // flat must use >= 3x fewer bytes/message
	wireAllocsFloor = 5.0 // flat must make >= 5x fewer allocs/op
)

// measureCodec runs fn iters times and reports mean ns/op and allocs/op.
// Like the checkpoint bench it counts Mallocs around the loop — the
// testing.Benchmark harness insists on wall-clock-driven iteration counts,
// which this box's measurement policy bans relying on.
func measureCodec(iters int, fn func() error) (nsPerOp int64, allocsPerOp float64, err error) {
	goruntime.GC()
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err = fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	goruntime.ReadMemStats(&after)
	return elapsed.Nanoseconds() / int64(iters), float64(after.Mallocs-before.Mallocs) / float64(iters), nil
}

// wireScenario is one message shape under test.
type wireScenario struct {
	name    string
	msgType byte
	// reply decodes the encoded frame into a fresh target of the right type.
	decode func(frame []byte) error
	value  any
	items  int
}

// RunWireBench measures one scenario: the same message is encoded and
// decoded through the gob (v1) and flat (v2) payload paths.
func RunWireBench(cfg WireBenchConfig) ([]WireBenchResult, error) {
	cfg = cfg.withDefaults()
	value := make([]byte, cfg.ValueBytes)
	mkItems := func(n int) []core.Item {
		items := make([]core.Item, n)
		for i := range items {
			items[i] = core.Item{Origin: ^uint64(0), Seq: uint64(i + 1), Key: uint64(i), Value: value}
		}
		return items
	}
	scenarios := []struct {
		name    string
		msgType byte
		msg     any
		items   int
		decode  func(p wire.Payload) error
	}{
		{
			name: "inject1", msgType: wire.MsgInject, items: 1,
			msg: wire.Inject{Task: "put", Items: mkItems(1)},
			decode: func(p wire.Payload) error {
				var m wire.Inject
				return wire.Unmarshal(p, &m)
			},
		},
		{
			name: "call", msgType: wire.MsgCall, items: 1,
			msg: wire.Call{Task: "get", Item: core.Item{Origin: ^uint64(0), Seq: 9, Key: 7, Value: value}, TimeoutMs: 10_000},
			decode: func(p wire.Payload) error {
				var m wire.Call
				return wire.Unmarshal(p, &m)
			},
		},
		{
			name: "inject64", msgType: wire.MsgInject, items: 64,
			msg: wire.Inject{Task: "put", Items: mkItems(64)},
			decode: func(p wire.Payload) error {
				var m wire.Inject
				return wire.Unmarshal(p, &m)
			},
		},
		{
			// The cross-worker edge frame. Like inject64 it amortises the
			// gob type dictionary over the batch, so it is reported as
			// context only — the floors stay on the single-message paths.
			name: "remoteemit64", msgType: wire.MsgRemoteEmit, items: 64,
			msg: wire.RemoteEmit{Edge: 1, Inst: 3, Items: mkItems(64)},
			decode: func(p wire.Payload) error {
				var m wire.RemoteEmit
				return wire.Unmarshal(p, &m)
			},
		},
	}

	var results []WireBenchResult
	for _, sc := range scenarios {
		res := WireBenchResult{Scenario: sc.name, Items: sc.items, ValueBytes: cfg.ValueBytes}

		gobFrame, err := wire.EncodeGob(sc.msgType, sc.msg)
		if err != nil {
			return nil, fmt.Errorf("wire bench %s: gob encode: %w", sc.name, err)
		}
		flatFrame, err := wire.Encode(sc.msgType, sc.msg)
		if err != nil {
			return nil, fmt.Errorf("wire bench %s: flat encode: %w", sc.name, err)
		}
		if flatFrame[1] != wire.VersionFlat {
			return nil, fmt.Errorf("wire bench %s: expected flat envelope, got version %d", sc.name, flatFrame[1])
		}
		res.GobBytesPerMsg = len(gobFrame)
		res.FlatBytesPerMsg = len(flatFrame)
		res.BytesRatio = float64(len(gobFrame)) / float64(len(flatFrame))

		roundTrip := func(encode func() ([]byte, error)) func() error {
			return func() error {
				frame, err := encode()
				if err != nil {
					return err
				}
				_, p, err := wire.Decode(frame)
				if err != nil {
					return err
				}
				return sc.decode(p)
			}
		}
		res.GobNsPerOp, res.GobAllocsPerOp, err = measureCodec(cfg.Iters,
			roundTrip(func() ([]byte, error) { return wire.EncodeGob(sc.msgType, sc.msg) }))
		if err != nil {
			return nil, fmt.Errorf("wire bench %s: gob round trip: %w", sc.name, err)
		}
		res.FlatNsPerOp, res.FlatAllocsPerOp, err = measureCodec(cfg.Iters,
			roundTrip(func() ([]byte, error) { return wire.Encode(sc.msgType, sc.msg) }))
		if err != nil {
			return nil, fmt.Errorf("wire bench %s: flat round trip: %w", sc.name, err)
		}
		if res.FlatAllocsPerOp > 0 {
			res.AllocsRatio = res.GobAllocsPerOp / res.FlatAllocsPerOp
		}
		results = append(results, res)
	}

	// Enforce the floors on the single-message hot paths. The 64-item batch
	// amortises the gob type dictionary, so its bytes ratio is reported as
	// context only.
	for _, r := range results {
		if r.Scenario != "inject1" && r.Scenario != "call" {
			continue
		}
		if r.BytesRatio < wireBytesFloor {
			return results, fmt.Errorf("wire bench %s: flat saves only %.2fx bytes/message (floor %.1fx): gob %d B, flat %d B",
				r.Scenario, r.BytesRatio, wireBytesFloor, r.GobBytesPerMsg, r.FlatBytesPerMsg)
		}
		if r.AllocsRatio < wireAllocsFloor {
			return results, fmt.Errorf("wire bench %s: flat saves only %.2fx allocs/op (floor %.1fx): gob %.1f, flat %.1f",
				r.Scenario, r.AllocsRatio, wireAllocsFloor, r.GobAllocsPerOp, r.FlatAllocsPerOp)
		}
	}
	return results, nil
}

// WriteWireBench runs the wire codec benchmark, prints a summary table, and
// (when outPath is non-empty) writes the structured results as JSON so CI
// records the perf trajectory.
func WriteWireBench(w io.Writer, cfg WireBenchConfig, outPath string) error {
	results, err := RunWireBench(cfg)
	if err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	tbl := &Table{
		Title:  "wire codec: gob (v1) vs flat (v2), full round trip",
		Note:   fmt.Sprintf("%d iterations/scenario, %d B values", cfg.Iters, cfg.ValueBytes),
		Header: []string{"scenario", "gob B/msg", "flat B/msg", "bytes", "gob allocs", "flat allocs", "allocs", "gob ns", "flat ns"},
	}
	for _, r := range results {
		tbl.Rows = append(tbl.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%d", r.GobBytesPerMsg),
			fmt.Sprintf("%d", r.FlatBytesPerMsg),
			fmt.Sprintf("%.1fx", r.BytesRatio),
			fmt.Sprintf("%.1f", r.GobAllocsPerOp),
			fmt.Sprintf("%.1f", r.FlatAllocsPerOp),
			fmt.Sprintf("%.1fx", r.AllocsRatio),
			fmt.Sprintf("%d", r.GobNsPerOp),
			fmt.Sprintf("%d", r.FlatNsPerOp),
		})
	}
	tbl.Fprint(w)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return writeRecord(outPath, data)
}
