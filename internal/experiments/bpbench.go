package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/state"
)

// BPBenchConfig sizes the backpressure measurement: a keyed entry TE doing
// fixed CPU work per item into a partitioned dictionary, offered load at
// multiples of its calibrated capacity under bounded (deadline) admission.
type BPBenchConfig struct {
	Items       int           // items at offered-load 1.0x (default 6000)
	Levels      []float64     // offered-load multipliers (default 0.5, 1, 2, 4)
	WorkIters   int           // spin iterations per item, the simulated service cost (default 20000)
	Partitions  int           // store partitions (default 2)
	QueueLen    int           // per-instance queue slots (default 64)
	OverflowLen int           // admission watermark in items (default 256)
	Burst       int           // items per InjectBatch burst (default 64)
	Deadline    time.Duration // block-admission deadline before shedding (default 200µs)
}

func (c BPBenchConfig) withDefaults() BPBenchConfig {
	if c.Items <= 0 {
		c.Items = 6000
	}
	if len(c.Levels) == 0 {
		c.Levels = []float64{0.5, 1, 2, 4}
	}
	if c.WorkIters <= 0 {
		// The service cost must decisively exceed the injection cost even
		// time-sliced on one core, or offered load can never outrun the
		// sink and the overload levels measure nothing.
		c.WorkIters = 20000
	}
	if c.Partitions <= 0 {
		c.Partitions = 2
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 64
	}
	if c.OverflowLen <= 0 {
		c.OverflowLen = 256
	}
	if c.Burst <= 0 {
		c.Burst = 64
	}
	if c.Deadline <= 0 {
		c.Deadline = 200 * time.Microsecond
	}
	return c
}

// BPBenchResult records one offered-load level. Counts are the headline
// numbers (accepted + shed == offered and delivered == accepted always
// hold — admission is lossless for what it accepts); rates and latency
// percentiles are wall-clock context, per the repo's single-core
// measurement policy.
type BPBenchResult struct {
	Level       float64 `json:"offered_load_x"` // multiple of calibrated capacity
	Offered     int     `json:"offered_items"`
	OfferedRate float64 `json:"offered_per_sec"`
	Accepted    int64   `json:"accepted_items"`
	Shed        int64   `json:"shed_items"`
	ShedRatio   float64 `json:"shed_ratio"`
	Delivered   int64   `json:"delivered_items"`
	Goodput     float64 `json:"goodput_per_sec"`
	AdmitP50Ns  int64   `json:"admit_p50_ns"`
	AdmitP95Ns  int64   `json:"admit_p95_ns"`
	AdmitP99Ns  int64   `json:"admit_p99_ns"`
}

// BPBenchRecord is the JSON artefact: calibrated capacity plus one row per
// offered-load level.
type BPBenchRecord struct {
	Capacity float64         `json:"calibrated_capacity_per_sec"`
	Levels   []BPBenchResult `json:"levels"`
}

// bpSink defeats dead-code elimination of the service-cost spin.
var bpSink atomic.Uint64

func bpSpin(iters int) {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < iters; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
	}
	bpSink.Store(h)
}

// bpGraph builds the measured pipeline: a keyed entry whose per-item spin
// makes ingestion the bottleneck, so offered load beyond capacity surfaces
// as admission waits and sheds rather than unbounded queues.
func bpGraph(workIters int) *core.Graph {
	g := core.NewGraph("bp-bench")
	se := g.AddSE("ingest-store", core.KindPartitioned, state.TypeKVMap, nil)
	g.AddTE("ingest", func(ctx core.Context, it core.Item) {
		bpSpin(workIters)
		ctx.Store().(state.KV).Put(it.Key, it.Value.([]byte))
	}, &core.Access{SE: se, Mode: core.AccessByKey}, true)
	return g
}

func bpDeploy(cfg BPBenchConfig, policy runtime.InjectPolicy, deadline time.Duration) (*runtime.Runtime, error) {
	return runtime.Deploy(bpGraph(cfg.WorkIters), runtime.Options{
		Partitions:     map[string]int{"ingest-store": cfg.Partitions},
		QueueLen:       cfg.QueueLen,
		OverflowLen:    cfg.OverflowLen,
		InjectPolicy:   policy,
		InjectDeadline: deadline,
	})
}

// bpCalibrate measures the pipeline's service capacity: items/s delivered
// with blocking admission (no deadline), i.e. injection paced exactly at
// the rate the workers drain.
func bpCalibrate(cfg BPBenchConfig) (float64, error) {
	rt, err := bpDeploy(cfg, runtime.InjectBlock, 0)
	if err != nil {
		return 0, err
	}
	defer rt.Stop()
	value := []byte("v")
	// Warm the pipeline (store growth, snapshot caches) off the clock.
	for k := uint64(0); k < 256; k++ {
		if err := rt.Inject("ingest", k, value); err != nil {
			return 0, err
		}
	}
	if !rt.Drain(60 * time.Second) {
		return 0, fmt.Errorf("bp bench: warm-up did not drain")
	}
	start := time.Now()
	for k := uint64(0); k < uint64(cfg.Items); k++ {
		if err := rt.Inject("ingest", k, value); err != nil {
			return 0, err
		}
	}
	if !rt.Drain(120 * time.Second) {
		return 0, fmt.Errorf("bp bench: calibration did not drain")
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("bp bench: calibration too fast to time")
	}
	return float64(cfg.Items) / elapsed, nil
}

// RunBPBenchLevel offers load at level x the calibrated capacity with
// bounded (deadline) admission and reports goodput, sheds and admission
// latency percentiles.
func RunBPBenchLevel(cfg BPBenchConfig, capacity, level float64) (BPBenchResult, error) {
	cfg = cfg.withDefaults()
	rt, err := bpDeploy(cfg, runtime.InjectBlock, cfg.Deadline)
	if err != nil {
		return BPBenchResult{}, err
	}
	defer rt.Stop()

	offered := int(float64(cfg.Items) * level)
	if offered < cfg.Burst {
		offered = cfg.Burst
	}
	rate := capacity * level
	interval := time.Duration(float64(time.Second) / rate)
	value := []byte("v")

	// Open-loop offering in InjectBatch bursts paced to the target rate: a
	// synchronous per-item injector on one core falls into lockstep with
	// the worker and can never sustain overload, but a burst needs room
	// for all its items under one admission decision, so levels beyond
	// capacity genuinely wait out the deadline and shed. A schedule that
	// has fallen behind never sleeps, so overload levels offer as fast as
	// admission allows.
	var accepted, shed int64
	start := time.Now()
	for i := 0; i < offered; i += cfg.Burst {
		n := cfg.Burst
		if i+n > offered {
			n = offered - i
		}
		due := start.Add(time.Duration(i) * interval)
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		batch := make([]runtime.InjectItem, n)
		for j := range batch {
			batch[j] = runtime.InjectItem{Key: uint64(i + j), Value: value}
		}
		err := rt.InjectBatch("ingest", batch)
		switch {
		case err == nil:
			accepted += int64(n)
		case errors.Is(err, runtime.ErrOverloaded):
			shed += int64(n)
		default:
			return BPBenchResult{}, err
		}
	}
	if !rt.Drain(120 * time.Second) {
		return BPBenchResult{}, fmt.Errorf("bp bench: level %.1fx did not drain", level)
	}
	elapsed := time.Since(start).Seconds()

	delivered := rt.Processed("ingest")
	if got := rt.Shed("ingest"); got != shed {
		return BPBenchResult{}, fmt.Errorf("bp bench: shed counter %d != caller-observed %d", got, shed)
	}
	if delivered != accepted {
		return BPBenchResult{}, fmt.Errorf("bp bench: delivered %d != accepted %d (admitted items lost)", delivered, accepted)
	}
	pcts := rt.AdmitLatency.Percentiles(50, 95, 99)
	return BPBenchResult{
		Level:       level,
		Offered:     offered,
		OfferedRate: float64(offered) / elapsed,
		Accepted:    accepted,
		Shed:        shed,
		ShedRatio:   float64(shed) / float64(offered),
		Delivered:   delivered,
		Goodput:     float64(delivered) / elapsed,
		AdmitP50Ns:  pcts[0],
		AdmitP95Ns:  pcts[1],
		AdmitP99Ns:  pcts[2],
	}, nil
}

// RunBPBench calibrates capacity, sweeps the offered-load levels and
// returns the record.
func RunBPBench(cfg BPBenchConfig) (BPBenchRecord, error) {
	cfg = cfg.withDefaults()
	capacity, err := bpCalibrate(cfg)
	if err != nil {
		return BPBenchRecord{}, err
	}
	rec := BPBenchRecord{Capacity: capacity}
	for _, level := range cfg.Levels {
		r, err := RunBPBenchLevel(cfg, capacity, level)
		if err != nil {
			return BPBenchRecord{}, err
		}
		rec.Levels = append(rec.Levels, r)
	}
	return rec, nil
}

// WriteBPBench runs the offered-load sweep, prints a summary table, and
// (when outPath is non-empty) writes the structured record as JSON so CI
// tracks the flow-control trajectory alongside the checkpoint and
// throughput records.
func WriteBPBench(w io.Writer, cfg BPBenchConfig, outPath string) error {
	cfg = cfg.withDefaults()
	rec, err := RunBPBench(cfg)
	if err != nil {
		return err
	}
	tbl := &Table{
		Title: "backpressure: offered load vs goodput under bounded admission",
		Note: fmt.Sprintf("capacity %.0f items/s; %d items at 1.0x, %v admission deadline, overflow watermark %d",
			rec.Capacity, cfg.Items, cfg.Deadline, cfg.OverflowLen),
		Header: []string{"load", "offered/s", "goodput/s", "shed", "shed%", "admit p50", "admit p99"},
	}
	for _, r := range rec.Levels {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.1fx", r.Level),
			fmt.Sprintf("%.0f", r.OfferedRate),
			fmt.Sprintf("%.0f", r.Goodput),
			fmt.Sprintf("%d", r.Shed),
			fmt.Sprintf("%.1f%%", r.ShedRatio*100),
			time.Duration(r.AdmitP50Ns).String(),
			time.Duration(r.AdmitP99Ns).String(),
		})
	}
	tbl.Fprint(w)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return writeRecord(outPath, data)
}
