package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	goruntime "runtime"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/state"
)

// CheckpointBenchConfig sizes the full-vs-delta checkpoint measurement.
type CheckpointBenchConfig struct {
	Keys       int     // store size in keys (default 100k)
	ValueBytes int     // payload bytes per value (default 64)
	Churn      float64 // fraction of keys overwritten per epoch (default 0.01)
	Epochs     int     // measured delta epochs per backend (default 5)
	Chunks     int     // chunks per checkpoint (default 4)
}

func (c CheckpointBenchConfig) withDefaults() CheckpointBenchConfig {
	if c.Keys <= 0 {
		c.Keys = 100_000
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 64
	}
	if c.Churn <= 0 {
		c.Churn = 0.01
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.Chunks <= 0 {
		c.Chunks = 4
	}
	return c
}

// CheckpointBenchResult records the failure-free-overhead comparison for
// one backend. Per the repo's measurement policy, it reports bytes and
// lock-hold time — quantities that are deterministic or meaningful on a
// single-core box — rather than wall-clock speedup ratios.
type CheckpointBenchResult struct {
	Backend            string  `json:"backend"`
	Keys               int     `json:"keys"`
	ValueBytes         int     `json:"value_bytes"`
	ChurnPerEpoch      float64 `json:"churn_per_epoch"`
	Epochs             int     `json:"epochs"`
	FullBytesPerEpoch  int64   `json:"full_bytes_per_epoch"`
	DeltaBytesPerEpoch int64   `json:"delta_bytes_per_epoch"`
	BytesRatio         float64 `json:"full_to_delta_bytes_ratio"`
	FullNsPerEpoch     int64   `json:"full_ns_per_epoch"`
	DeltaNsPerEpoch    int64   `json:"delta_ns_per_epoch"`
	FullLockNs         int64   `json:"full_lock_ns_per_epoch"`
	DeltaLockNs        int64   `json:"delta_lock_ns_per_epoch"`
	FullAllocsPerOp    uint64  `json:"full_allocs_per_epoch"`
	DeltaAllocsPerOp   uint64  `json:"delta_allocs_per_epoch"`
	// Compressed-base figures: the full-checkpoint loop re-run with
	// Backup.CompressBase, measuring stored bytes after flate.
	CompressedBaseBytes int64   `json:"compressed_base_bytes_per_epoch"`
	BaseCompressRatio   float64 `json:"base_to_compressed_bytes_ratio"`
}

// allocsAround runs fn and returns the heap allocations it performed, so
// the recorded allocs cover only the checkpoint path, not the churn
// workload around it.
func allocsAround(fn func() error) (uint64, error) {
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	err := fn()
	goruntime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, err
}

// RunCheckpointBench measures full vs delta checkpoint cost per epoch on a
// synthetic dictionary SE for one backend ("kvmap" or "sharded-kvmap").
func RunCheckpointBench(cfg CheckpointBenchConfig, backend string) (CheckpointBenchResult, error) {
	cfg = cfg.withDefaults()
	newStore := func() state.DeltaStore {
		if backend == "sharded-kvmap" {
			return state.NewShardedKVMap(0)
		}
		return state.NewKVMap()
	}
	newBackup := func() *checkpoint.Backup {
		cl := cluster.New(2, cluster.Config{})
		return checkpoint.NewBackup(cl, []*cluster.Node{cl.Node(0), cl.Node(1)})
	}
	value := make([]byte, cfg.ValueBytes)
	fill := func(st state.DeltaStore) {
		kv := st.(state.KV)
		for i := 0; i < cfg.Keys; i++ {
			kv.Put(uint64(i), value)
		}
	}
	churn := func(st state.DeltaStore, epoch int) {
		kv := st.(state.KV)
		n := int(float64(cfg.Keys) * cfg.Churn)
		for i := 0; i < n; i++ {
			// Deterministic churn set, distinct per epoch.
			kv.Put(uint64((epoch*7919+i*13)%cfg.Keys), value)
		}
	}

	res := CheckpointBenchResult{
		Backend:       backend,
		Keys:          cfg.Keys,
		ValueBytes:    cfg.ValueBytes,
		ChurnPerEpoch: cfg.Churn,
		Epochs:        cfg.Epochs,
	}

	// Full-checkpoint baseline: every epoch serialises the whole base.
	{
		st := newStore()
		st.EnableDeltaTracking()
		fill(st)
		bk := newBackup()
		epoch := uint64(1)
		if _, err := checkpoint.Async(st, checkpoint.Meta{SE: "bench/0", Epoch: epoch}, cfg.Chunks, bk); err != nil {
			return res, err
		}
		var bytes int64
		var dur, lock time.Duration
		var allocs uint64
		for e := 0; e < cfg.Epochs; e++ {
			churn(st, e)
			epoch++
			var r checkpoint.Result
			a, err := allocsAround(func() (err error) {
				r, err = checkpoint.Async(st, checkpoint.Meta{SE: "bench/0", Epoch: epoch}, cfg.Chunks, bk)
				return err
			})
			if err != nil {
				return res, err
			}
			bytes += r.Bytes
			dur += r.Duration
			lock += r.LockTime
			allocs += a
		}
		res.FullBytesPerEpoch = bytes / int64(cfg.Epochs)
		res.FullNsPerEpoch = dur.Nanoseconds() / int64(cfg.Epochs)
		res.FullLockNs = lock.Nanoseconds() / int64(cfg.Epochs)
		res.FullAllocsPerOp = allocs / uint64(cfg.Epochs)
	}

	// Delta chain: base once, then one delta per epoch.
	{
		st := newStore()
		st.EnableDeltaTracking()
		fill(st)
		bk := newBackup()
		epoch := uint64(1)
		if _, err := checkpoint.Async(st, checkpoint.Meta{SE: "bench/0", Epoch: epoch}, cfg.Chunks, bk); err != nil {
			return res, err
		}
		var bytes int64
		var dur, lock time.Duration
		var allocs uint64
		for e := 0; e < cfg.Epochs; e++ {
			churn(st, e)
			epoch++
			var r checkpoint.Result
			a, err := allocsAround(func() (err error) {
				r, err = checkpoint.AsyncDelta(st, checkpoint.Meta{SE: "bench/0", Epoch: epoch}, cfg.Chunks, bk)
				return err
			})
			if err != nil {
				return res, err
			}
			bytes += r.Bytes
			dur += r.Duration
			lock += r.LockTime
			allocs += a
		}
		res.DeltaBytesPerEpoch = bytes / int64(cfg.Epochs)
		res.DeltaNsPerEpoch = dur.Nanoseconds() / int64(cfg.Epochs)
		res.DeltaLockNs = lock.Nanoseconds() / int64(cfg.Epochs)
		res.DeltaAllocsPerOp = allocs / uint64(cfg.Epochs)
	}

	// Compressed bases: the full-checkpoint loop with flate on, proving the
	// compression pays for itself in stored (and transferred) bytes and
	// that a compressed chain still restores.
	{
		st := newStore()
		st.EnableDeltaTracking()
		fill(st)
		bk := newBackup()
		bk.CompressBase = true
		epoch := uint64(1)
		if _, err := checkpoint.Async(st, checkpoint.Meta{SE: "bench/0", Epoch: epoch}, cfg.Chunks, bk); err != nil {
			return res, err
		}
		var bytes int64
		for e := 0; e < cfg.Epochs; e++ {
			churn(st, e)
			epoch++
			r, err := checkpoint.Async(st, checkpoint.Meta{SE: "bench/0", Epoch: epoch}, cfg.Chunks, bk)
			if err != nil {
				return res, err
			}
			bytes += r.Bytes
		}
		if _, _, err := bk.Restore("bench/0", 1); err != nil {
			return res, fmt.Errorf("compressed base restore: %w", err)
		}
		res.CompressedBaseBytes = bytes / int64(cfg.Epochs)
	}

	if res.DeltaBytesPerEpoch > 0 {
		res.BytesRatio = float64(res.FullBytesPerEpoch) / float64(res.DeltaBytesPerEpoch)
	}
	if res.CompressedBaseBytes > 0 {
		res.BaseCompressRatio = float64(res.FullBytesPerEpoch) / float64(res.CompressedBaseBytes)
	}
	return res, nil
}

// WriteCheckpointBench runs the checkpoint benchmark for both dictionary
// backends, prints a summary table, and (when outPath is non-empty) writes
// the structured results as JSON so CI records the perf trajectory.
func WriteCheckpointBench(w io.Writer, cfg CheckpointBenchConfig, outPath string) error {
	var results []CheckpointBenchResult
	for _, backend := range []string{"kvmap", "sharded-kvmap"} {
		r, err := RunCheckpointBench(cfg, backend)
		if err != nil {
			return fmt.Errorf("checkpoint bench (%s): %w", backend, err)
		}
		results = append(results, r)
	}
	tbl := &Table{
		Title: "checkpoint bytes/epoch: full vs delta",
		Note: fmt.Sprintf("%d keys x %d B, %.1f%% churn/epoch, %d epochs",
			results[0].Keys, results[0].ValueBytes, results[0].ChurnPerEpoch*100, results[0].Epochs),
		Header: []string{"backend", "full B/epoch", "delta B/epoch", "ratio", "flate base B", "flate", "full lock", "delta lock"},
	}
	for _, r := range results {
		tbl.Rows = append(tbl.Rows, []string{
			r.Backend,
			fmt.Sprintf("%d", r.FullBytesPerEpoch),
			fmt.Sprintf("%d", r.DeltaBytesPerEpoch),
			fmt.Sprintf("%.1fx", r.BytesRatio),
			fmt.Sprintf("%d", r.CompressedBaseBytes),
			fmt.Sprintf("%.1fx", r.BaseCompressRatio),
			time.Duration(r.FullLockNs).String(),
			time.Duration(r.DeltaLockNs).String(),
		})
	}
	tbl.Fprint(w)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return writeRecord(outPath, data)
}
