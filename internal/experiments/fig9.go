package experiments

import (
	"time"

	"repro/internal/apps/logreg"
	"repro/internal/baselines/sparksim"
	"repro/internal/cluster"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// Fig9Row is one (system, nodes) point of the batch LR scalability sweep.
type Fig9Row struct {
	System     string
	Nodes      int
	Throughput float64 // bytes of training data per second
}

// fig9ComputePerPoint models the per-example cost of the paper's 100 GB
// dataset as idle wait, so both systems scale with worker count rather
// than with the host's core count. Both systems get exactly the same
// per-point cost; they differ only structurally (pipelined vs scheduled).
const fig9ComputePerPoint = 10 * time.Microsecond

// Fig9 reproduces Fig. 9: batch logistic regression throughput as nodes
// grow, SDG vs Spark. The paper: both scale linearly (25-100 nodes on a
// 100 GB dataset); SDG is higher "likely due to the pipelining in SDGs,
// which avoids the re-instantiation of tasks after each iteration".
func Fig9(scale Scale) ([]Fig9Row, *Table, error) {
	nodeCounts := []int{1, 2, 4}
	const dim = 32
	const batchPoints = 200
	pointBytes := float64(dim * 8)
	var rows []Fig9Row

	for _, n := range nodeCounts {
		// --- SDG: pipelined training over partial weight replicas. ---
		cl := cluster.New(0, cluster.Config{})
		lr, err := logreg.New(logreg.Config{Dim: dim, Workers: n, Runtime: runtime.Options{
			Cluster:  cl,
			QueueLen: 64,
		}})
		if err != nil {
			return nil, nil, err
		}
		// Each train batch (one item) costs batchPoints * perPoint.
		for _, se := range lr.Runtime().Stats().SEs {
			for _, node := range se.Nodes {
				cl.Node(node).SetPenalty(batchPoints * fig9ComputePerPoint)
			}
		}
		gen := workload.NewPointGen(11, dim, 0.05)
		nBatches := 16
		batches := make([][]workload.Point, nBatches)
		for i := range batches {
			batches[i] = gen.Batch(batchPoints)
		}
		start := time.Now()
		deadline := start.Add(scale.PointDuration)
		var points int64
		for i := 0; time.Now().Before(deadline); i++ {
			if err := lr.Train(batches[i%nBatches]); err != nil {
				break
			}
			points += batchPoints
		}
		lr.Runtime().Drain(60 * time.Second)
		elapsed := time.Since(start)
		rows = append(rows, Fig9Row{
			System: "SDG", Nodes: n,
			Throughput: float64(points) * pointBytes / elapsed.Seconds(),
		})
		lr.Stop()

		// --- Spark: scheduled iterations with per-task launch cost and the
		// same per-point compute model. ---
		gen2 := workload.NewPointGen(11, dim, 0.05)
		const perPart = 800
		parts := make([][]workload.Point, n)
		for t := 0; t < n; t++ {
			parts[t] = gen2.Batch(perPart)
		}
		job := sparksim.NewBatchLR(sparksim.BatchLRConfig{
			Dim: dim, Tasks: n,
			TaskLaunch:      2 * time.Millisecond,
			ComputePerPoint: fig9ComputePerPoint,
		})
		start = time.Now()
		deadline = start.Add(scale.PointDuration)
		var sparkPoints int64
		for time.Now().Before(deadline) {
			job.Iterate(parts)
			sparkPoints += int64(n * perPart)
		}
		elapsed = time.Since(start)
		rows = append(rows, Fig9Row{
			System: "Spark", Nodes: n,
			Throughput: float64(sparkPoints) * pointBytes / elapsed.Seconds(),
		})
	}

	table := &Table{
		Title:  "Fig 9: batch logistic regression throughput vs nodes",
		Note:   "paper: both linear; SDG above Spark (pipelining avoids task re-instantiation)",
		Header: []string{"nodes", "system", "tput(MB/s)"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			f0(float64(r.Nodes)), r.System, f2(r.Throughput / (1 << 20)),
		})
	}
	return rows, table, nil
}
