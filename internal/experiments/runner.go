package experiments

import (
	"fmt"
	"io"
)

// Runner executes experiments by their paper identifier and prints the
// resulting tables. It is shared by cmd/sdg-bench and the root benchmark
// harness.
type Runner struct {
	Scale Scale
	Out   io.Writer
}

// Known experiment identifiers, in paper order. "0" denotes Table 1.
var Known = []string{"0", "5", "6", "7", "8", "9", "10", "11", "12", "13"}

// Run executes one experiment by id and prints its table.
func (r *Runner) Run(id string) error {
	switch id {
	case "0", "table1":
		Table1().Fprint(r.Out)
		return nil
	case "5":
		_, t, err := Fig5(r.Scale)
		return r.print(t, err)
	case "6":
		_, t, err := Fig6(r.Scale)
		return r.print(t, err)
	case "7":
		_, t, err := Fig7(r.Scale)
		return r.print(t, err)
	case "8":
		_, t, err := Fig8(r.Scale)
		return r.print(t, err)
	case "9":
		_, t, err := Fig9(r.Scale)
		return r.print(t, err)
	case "10":
		_, _, t, err := Fig10(r.Scale)
		return r.print(t, err)
	case "11":
		_, t, err := Fig11(r.Scale)
		return r.print(t, err)
	case "12":
		_, t, err := Fig12(r.Scale)
		return r.print(t, err)
	case "13":
		_, _, t, err := Fig13(r.Scale)
		return r.print(t, err)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, Known)
	}
}

func (r *Runner) print(t *Table, err error) error {
	if err != nil {
		return err
	}
	t.Fprint(r.Out)
	return nil
}

// RunAll executes every experiment in paper order.
func (r *Runner) RunAll() error {
	for _, id := range Known {
		if err := r.Run(id); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
