package experiments

import (
	"sync"
	"time"

	"repro/internal/apps/cf"
	"repro/internal/cluster"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// Fig10Point is one timeline sample of the straggler experiment.
type Fig10Point struct {
	At         time.Duration
	Throughput float64 // co-occurrence updates/s over the sample bucket
	Nodes      int     // updateCoOcc instances (the scaled TE)
}

// Fig10Event records a scaling action.
type Fig10Event struct {
	At        time.Duration
	TE        string
	Instances int
}

// fig10ServiceCost models the per-update CPU cost of the co-occurrence
// maintenance on a normal node; the straggler runs the same work slower
// (the paper's weak machine: 2.4 GHz with 4 GB vs 3.4 GHz with 8 GB).
const (
	fig10ServiceCost   = 500 * time.Microsecond
	fig10StragglerCost = 900 * time.Microsecond
)

// Fig10 reproduces Fig. 10: reactive runtime parallelism. The CF update
// path is driven hard; the single updateCoOcc instance (with its partial
// coOcc replica) becomes the bottleneck. The controller adds a second
// instance — which lands on a less powerful machine and becomes a
// straggler — and later mitigates the straggler with a third instance.
// The paper's throughput steps are 3.6k -> 6.2k -> 11k requests/s; we
// assert the same staircase shape.
func Fig10(scale Scale) ([]Fig10Point, []Fig10Event, *Table, error) {
	cl := cluster.New(0, cluster.Config{})
	app, err := cf.New(cf.Config{Runtime: runtime.Options{
		Cluster:  cl,
		QueueLen: 512,
	}})
	if err != nil {
		return nil, nil, nil, err
	}
	defer app.Stop()

	// Per-item service cost on the coOcc node.
	for _, se := range app.Runtime().Stats().SEs {
		if se.Name == "coOcc" {
			for _, n := range se.Nodes {
				cl.Node(n).SetPenalty(fig10ServiceCost)
			}
		}
	}

	start := time.Now()
	var mu sync.Mutex
	var events []Fig10Event
	var scaleCount int

	// Flood ratings (the update path); injection backpressure paces the
	// feeders at the pipeline's capacity.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < scale.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := workload.NewRatingGen(int64(300+c), 2000, 300)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := gen.Next()
				if err := app.AddRating(r.User, r.Item, r.Rating); err != nil {
					return
				}
			}
		}(c)
	}

	// Sample the timeline: throughput = co-occurrence updates completed.
	// The controller starts after the first quarter so the single-instance
	// bottleneck phase is visible, as in the paper's timeline.
	total := 4 * scale.PointDuration
	bucket := total / 24
	var series []Fig10Point
	last := app.Runtime().Processed("updateCoOcc")
	for t := time.Duration(0); t < total; t += bucket {
		mu.Lock()
		sc := scaleCount
		mu.Unlock()
		if t >= total/4 && sc == 0 && len(series) > 0 && app.Runtime().Instances("updateCoOcc") == 1 {
			app.Runtime().StartAutoScale(20*time.Millisecond, runtime.ScalePolicy{
				QueueHighWater: 64,
				MaxInstances:   3,
				TEs:            []string{"updateCoOcc"},
				Cooldown:       scale.PointDuration,
				OnScale: func(te string, n int) {
					mu.Lock()
					defer mu.Unlock()
					events = append(events, Fig10Event{At: time.Since(start), TE: te, Instances: n})
					scaleCount++
					newest := cl.Node(cl.Size() - 1)
					if scaleCount == 1 {
						// The first new instance lands on the weak machine.
						newest.SetPenalty(fig10StragglerCost)
					} else {
						newest.SetPenalty(fig10ServiceCost)
					}
				},
			})
		}
		time.Sleep(bucket)
		cur := app.Runtime().Processed("updateCoOcc")
		series = append(series, Fig10Point{
			At:         time.Since(start),
			Throughput: float64(cur-last) / bucket.Seconds(),
			Nodes:      app.Runtime().Instances("updateCoOcc"),
		})
		last = cur
	}
	close(stop)
	wg.Wait()

	table := &Table{
		Title:  "Fig 10: runtime parallelism for handling stragglers (CF)",
		Note:   "paper: scale-up at t=10s (3.6k->6.2k req/s) lands on a weak machine; straggler mitigated at t=50s (->11k req/s)",
		Header: []string{"t(ms)", "tput(updates/s)", "updateCoOcc instances"},
	}
	for _, p := range series {
		table.Rows = append(table.Rows, []string{
			f0(float64(p.At.Milliseconds())), f0(p.Throughput), f0(float64(p.Nodes)),
		})
	}
	mu.Lock()
	defer mu.Unlock()
	return series, events, table, nil
}
