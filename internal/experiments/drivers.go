package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps/kv"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/workload"
)

// preloadKV fills the store's partitions directly (white-box) to the target
// aggregate size, bypassing the request path so experiment setup stays fast.
func preloadKV(app *kv.KV, targetBytes int64, valueSize int) uint64 {
	parts := app.Runtime().StateInstances("store")
	var key uint64
	perEntry := int64(valueSize + 56) // value + key + bookkeeping
	entries := targetBytes / perEntry
	for i := int64(0); i < entries; i++ {
		idx := state.PartitionKey(key, parts)
		st, err := app.Runtime().StateStore("store", idx)
		if err != nil {
			break
		}
		st.(state.KV).Put(key, make([]byte, valueSize))
		key++
	}
	return key
}

// driveKV runs an open-loop mixed workload against the store for the
// scale's point duration and reports (throughput req/s, latency candles).
func driveKV(app *kv.KV, readFrac float64, valueSize int, keySpace uint64, scale Scale) (float64, metrics.Candlestick) {
	var ops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < scale.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := workload.NewKVGen(int64(1000+c), keySpace, readFrac, valueSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				var err error
				if op.Read {
					_, err = app.Get(op.Key, 10*time.Second)
				} else {
					err = app.Put(op.Key, op.Value, 10*time.Second)
				}
				if err == nil {
					ops.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(scale.PointDuration)
	close(stop)
	wg.Wait()
	return float64(ops.Load()) / scale.PointDuration.Seconds(), app.Runtime().CallLatency.Candlestick()
}

// mb renders a byte count in MB.
func mb(b int64) string {
	return f2(float64(b) / (1 << 20))
}
