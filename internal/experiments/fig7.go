package experiments

import (
	"sync"
	"time"

	"repro/internal/apps/kv"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// Fig7Row is one node-count point of the distributed KV sweep.
type Fig7Row struct {
	Nodes      int
	StateBytes int64
	Throughput float64
	Latency    metrics.Candlestick
}

// fig7ServiceCost models the per-request service time of one store node
// (the paper's requests carry serialisation and network costs on real VMs).
// Modelling it as idle wait makes aggregate throughput a function of the
// partition count, independent of the host's core count.
const fig7ServiceCost = 200 * time.Microsecond

// Fig7 reproduces Fig. 7: KV store throughput and read latency as the store
// scales across nodes with constant per-node state (paper: 10-40 VMs at
// 5 GB/node; aggregate throughput scales near-linearly 0.47M -> 1.5M req/s,
// median latency 8-29 ms). Requests are driven open-loop so the measured
// rate is the servers' capacity rather than the driver's.
func Fig7(scale Scale) ([]Fig7Row, *Table, error) {
	nodeCounts := []int{1, 2, 4, 8}
	const perNode = int64(2 << 20) // 2 MB per node (scaled from 5 GB)
	const valueSize = 256
	var rows []Fig7Row
	for _, n := range nodeCounts {
		cl := cluster.New(0, cluster.Config{})
		app, err := kv.New(kv.Config{Partitions: n, Runtime: runtime.Options{
			Cluster:  cl,
			QueueLen: 512,
			Mode:     checkpoint.ModeAsync,
			Interval: maxDur(scale.PointDuration/2, 150*time.Millisecond),
			Chunks:   2,
		}})
		if err != nil {
			return nil, nil, err
		}
		keys := preloadKV(app, perNode*int64(n), valueSize)
		for _, se := range app.Runtime().Stats().SEs {
			for _, node := range se.Nodes {
				cl.Node(node).SetPenalty(fig7ServiceCost)
			}
		}

		// Open-loop feeders paced to ~80% of aggregate service capacity
		// (1/serviceCost per partition), so throughput scales with nodes
		// while queues stay shallow enough for meaningful latency.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		feeders := n
		perFeederBurst := 40 // per 10ms -> 4k req/s per feeder at 200us cost
		for c := 0; c < feeders; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				gen := workload.NewKVGen(int64(500+c), keys, 0.9, valueSize)
				ticker := time.NewTicker(10 * time.Millisecond)
				defer ticker.Stop()
				for {
					select {
					case <-stop:
						return
					case <-ticker.C:
					}
					for i := 0; i < perFeederBurst; i++ {
						op := gen.Next()
						if op.Read {
							_ = app.Runtime().Inject("get", op.Key, nil)
						} else {
							_ = app.PutAsync(op.Key, op.Value)
						}
					}
				}
			}(c)
		}
		// One closed-loop client samples read latency.
		var latWG sync.WaitGroup
		latWG.Add(1)
		go func() {
			defer latWG.Done()
			gen := workload.NewKVGen(999, keys, 1.0, valueSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = app.Get(gen.Next().Key, 10*time.Second)
			}
		}()

		before := app.Runtime().Processed("get") + app.Runtime().Processed("put")
		time.Sleep(scale.PointDuration)
		served := app.Runtime().Processed("get") + app.Runtime().Processed("put") - before
		close(stop)
		wg.Wait()
		latWG.Wait()

		rows = append(rows, Fig7Row{
			Nodes:      n,
			StateBytes: perNode * int64(n),
			Throughput: float64(served) / scale.PointDuration.Seconds(),
			Latency:    app.Runtime().CallLatency.Candlestick(),
		})
		app.Stop()
	}
	table := &Table{
		Title:  "Fig 7: KV throughput/latency vs nodes, constant state per node",
		Note:   "paper: near-linear scaling 0.47M->1.5M req/s for 10->40 nodes",
		Header: []string{"nodes", "state(MB)", "tput(req/s)", "p50 lat(ms)", "p95 lat(ms)"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			f0(float64(r.Nodes)), mb(r.StateBytes), f0(r.Throughput),
			ms(r.Latency.P50), ms(r.Latency.P95),
		})
	}
	return rows, table, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
