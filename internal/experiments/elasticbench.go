package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/runtime"
)

// ElasticBenchConfig sizes the full-cycle elasticity measurement: a load
// sawtooth — flood phases that bottleneck a keyed ingest TE, separated by
// idle troughs — driven against the reactive auto-scaler with both the
// grow and shrink sides enabled, so the instance count ratchets up under
// load and retires back to the floor between bursts.
type ElasticBenchConfig struct {
	Items        int           // items per flood phase (default 2000)
	Cycles       int           // sawtooth cycles (default 2)
	WorkIters    int           // spin iterations per item (default 20000)
	Burst        int           // items per InjectBatch burst (default 64)
	QueueLen     int           // per-instance queue slots (default 8)
	OverflowLen  int           // admission watermark in items (default 256)
	MaxInstances int           // growth bound (default 3)
	MinInstances int           // shrink floor (default 1)
	Interval     time.Duration // auto-scale scan interval (default 2ms)
	IdleWait     time.Duration // max wait for the trough to shrink (default 5s)
}

func (c ElasticBenchConfig) withDefaults() ElasticBenchConfig {
	if c.Items <= 0 {
		c.Items = 2000
	}
	if c.Cycles <= 0 {
		c.Cycles = 2
	}
	if c.WorkIters <= 0 {
		c.WorkIters = 20000
	}
	if c.Burst <= 0 {
		c.Burst = 64
	}
	if c.QueueLen <= 0 {
		// The queue holds micro-batches, not items: with a single slot every
		// burst beyond the one in flight parks in the overflow, and parked
		// depth is the auto-scaler's bottleneck signal.
		c.QueueLen = 1
	}
	if c.OverflowLen <= 0 {
		c.OverflowLen = 256
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = 3
	}
	if c.MinInstances <= 0 {
		c.MinInstances = 1
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.IdleWait <= 0 {
		c.IdleWait = 5 * time.Second
	}
	return c
}

// ElasticScaleEvent is one auto-scaler action on the timeline.
type ElasticScaleEvent struct {
	AtMs      int64  `json:"at_ms"`
	TE        string `json:"te"`
	Instances int    `json:"instances"`
}

// ElasticPhaseResult records one sawtooth phase. Goodput applies to flood
// phases; trough phases record how long the scaler took to retire back to
// the floor (0 items offered).
type ElasticPhaseResult struct {
	Cycle         int     `json:"cycle"`
	Phase         string  `json:"phase"` // "flood" or "trough"
	Offered       int     `json:"offered_items"`
	Seconds       float64 `json:"seconds"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	InstancesEnd  int     `json:"instances_end"`
}

// ElasticBenchRecord is the JSON artefact: the phase timeline, every scale
// event, merge-pause percentiles and the lossless-delivery invariant
// counters (delivered == offered always holds — admission blocks, never
// sheds, and scale-in retires instances only after they drain).
type ElasticBenchRecord struct {
	Phases          []ElasticPhaseResult `json:"phases"`
	Events          []ElasticScaleEvent  `json:"events"`
	PeakInstances   int                  `json:"peak_instances"`
	FinalInstances  int                  `json:"final_instances"`
	ScaleUps        int                  `json:"scale_ups"`
	ScaleDowns      int                  `json:"scale_downs"`
	MergePauses     int64                `json:"merge_pauses"`
	MergePauseP50Ns int64                `json:"merge_pause_p50_ns"`
	MergePauseMaxNs int64                `json:"merge_pause_max_ns"`
	OfferedTotal    int64                `json:"offered_total"`
	DeliveredTotal  int64                `json:"delivered_total"`
}

// RunElasticBench drives the sawtooth and returns the record.
func RunElasticBench(cfg ElasticBenchConfig) (ElasticBenchRecord, error) {
	cfg = cfg.withDefaults()
	rt, err := runtime.Deploy(bpGraph(cfg.WorkIters), runtime.Options{
		Partitions:  map[string]int{"ingest-store": cfg.MinInstances},
		QueueLen:    cfg.QueueLen,
		OverflowLen: cfg.OverflowLen,
	})
	if err != nil {
		return ElasticBenchRecord{}, err
	}
	defer rt.Stop()

	start := time.Now()
	var rec ElasticBenchRecord
	// The auto-scaler goroutine appends events concurrently with the phase
	// loop; everything it touches stays behind evMu until the final copy.
	var evMu sync.Mutex
	var events []ElasticScaleEvent
	peak := cfg.MinInstances
	rt.StartAutoScale(cfg.Interval, runtime.ScalePolicy{
		TEs:            []string{"ingest"},
		QueueHighWater: cfg.Burst / 4,
		QueueLowWater:  0,
		ShrinkAfter:    4,
		MinInstances:   cfg.MinInstances,
		MaxInstances:   cfg.MaxInstances,
		Cooldown:       4 * cfg.Interval,
		OnScale: func(te string, n int) {
			evMu.Lock()
			events = append(events, ElasticScaleEvent{
				AtMs: time.Since(start).Milliseconds(), TE: te, Instances: n,
			})
			if n > peak {
				peak = n
			}
			evMu.Unlock()
		},
	})

	value := []byte("v")
	key := uint64(0)
	for cycle := 1; cycle <= cfg.Cycles; cycle++ {
		// Flood: offer the phase's items in bursts as fast as blocking
		// admission lets them in. The small queue turns the surplus into
		// parked overflow, the bottleneck signal that grows the TE.
		floodStart := time.Now()
		before := rt.Processed("ingest")
		for i := 0; i < cfg.Items; i += cfg.Burst {
			n := cfg.Burst
			if i+n > cfg.Items {
				n = cfg.Items - i
			}
			batch := make([]runtime.InjectItem, n)
			for j := range batch {
				batch[j] = runtime.InjectItem{Key: key, Value: value}
				key++
			}
			if err := rt.InjectBatch("ingest", batch); err != nil {
				return ElasticBenchRecord{}, err
			}
		}
		if !rt.Drain(120 * time.Second) {
			return ElasticBenchRecord{}, fmt.Errorf("elastic bench: cycle %d flood did not drain", cycle)
		}
		floodSecs := time.Since(floodStart).Seconds()
		delivered := rt.Processed("ingest") - before
		rec.Phases = append(rec.Phases, ElasticPhaseResult{
			Cycle: cycle, Phase: "flood", Offered: cfg.Items, Seconds: floodSecs,
			GoodputPerSec: float64(delivered) / floodSecs,
			InstancesEnd:  rt.Instances("ingest"),
		})

		// Trough: stay idle until the scaler retires the TE back to the
		// floor (or the bounded wait elapses — recorded either way).
		troughStart := time.Now()
		deadline := troughStart.Add(cfg.IdleWait)
		for rt.Instances("ingest") > cfg.MinInstances && time.Now().Before(deadline) {
			time.Sleep(cfg.Interval)
		}
		rec.Phases = append(rec.Phases, ElasticPhaseResult{
			Cycle: cycle, Phase: "trough",
			Seconds:      time.Since(troughStart).Seconds(),
			InstancesEnd: rt.Instances("ingest"),
		})
	}

	evMu.Lock()
	rec.Events = append([]ElasticScaleEvent(nil), events...)
	rec.PeakInstances = peak
	evMu.Unlock()
	ups, downs := 0, 0
	last := cfg.MinInstances
	for _, ev := range rec.Events {
		if ev.Instances > last {
			ups++
		} else if ev.Instances < last {
			downs++
		}
		last = ev.Instances
	}
	pcts := rt.ScalePause.Percentiles(50)
	rec.FinalInstances = rt.Instances("ingest")
	rec.ScaleUps = ups
	rec.ScaleDowns = downs
	rec.MergePauses = rt.ScalePause.Count()
	rec.MergePauseP50Ns = pcts[0]
	rec.MergePauseMaxNs = rt.ScalePause.Max()
	rec.OfferedTotal = int64(cfg.Items) * int64(cfg.Cycles)
	rec.DeliveredTotal = rt.Processed("ingest")
	if rec.DeliveredTotal != rec.OfferedTotal {
		return rec, fmt.Errorf("elastic bench: delivered %d != offered %d (item lost or duplicated across rescale)",
			rec.DeliveredTotal, rec.OfferedTotal)
	}
	return rec, nil
}

// WriteElasticBench runs the sawtooth, prints a summary table, and (when
// outPath is non-empty) writes the structured record as JSON so CI tracks
// full-cycle elasticity alongside the other perf records.
func WriteElasticBench(w io.Writer, cfg ElasticBenchConfig, outPath string) error {
	cfg = cfg.withDefaults()
	rec, err := RunElasticBench(cfg)
	if err != nil {
		return err
	}
	tbl := &Table{
		Title: "elasticity: load sawtooth vs instance count",
		Note: fmt.Sprintf("%d items/flood x %d cycles, instances %d..%d, %d scale-ups / %d scale-downs, merge pause p50 %v max %v",
			cfg.Items, cfg.Cycles, cfg.MinInstances, cfg.MaxInstances, rec.ScaleUps, rec.ScaleDowns,
			time.Duration(rec.MergePauseP50Ns), time.Duration(rec.MergePauseMaxNs)),
		Header: []string{"cycle", "phase", "offered", "seconds", "goodput/s", "instances"},
	}
	for _, p := range rec.Phases {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", p.Cycle),
			p.Phase,
			fmt.Sprintf("%d", p.Offered),
			fmt.Sprintf("%.3f", p.Seconds),
			fmt.Sprintf("%.0f", p.GoodputPerSec),
			fmt.Sprintf("%d", p.InstancesEnd),
		})
	}
	tbl.Fprint(w)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return writeRecord(outPath, data)
}
