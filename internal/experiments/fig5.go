package experiments

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps/cf"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fig5Row is one read/write-ratio point of the CF experiment.
type Fig5Row struct {
	Ratio      string // read:write
	ReadFrac   float64
	Throughput float64 // requests/s (reads + writes)
	Latency    metrics.Candlestick
}

// Fig5 reproduces Fig. 5: online collaborative filtering throughput and
// getRec latency across read/write ratios {1:5, 1:2, 1:1, 2:1, 5:1}. The
// paper observes 10-14k requests/s, with throughput decreasing as the read
// share grows "due to the cost of the synchronisation barrier that
// aggregates the partial state".
func Fig5(scale Scale) ([]Fig5Row, *Table, error) {
	ratios := []struct {
		name     string
		readFrac float64
	}{
		{"1:5", 1.0 / 6.0},
		{"1:2", 1.0 / 3.0},
		{"1:1", 0.5},
		{"2:1", 2.0 / 3.0},
		{"5:1", 5.0 / 6.0},
	}
	var rows []Fig5Row
	for _, r := range ratios {
		app, err := cf.New(cf.Config{UserPartitions: 2, CoOccReplicas: 2})
		if err != nil {
			return nil, nil, err
		}
		// Seed the model so reads have work to do.
		seed := workload.NewRatingGen(42, 2000, 500)
		for i := 0; i < 3000; i++ {
			rt := seed.Next()
			_ = app.AddRating(rt.User, rt.Item, rt.Rating)
		}
		app.Runtime().Drain(10 * time.Second)

		var ops atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < scale.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				gen := workload.NewRatingGen(int64(100+c), 2000, 500)
				rng := gen // reuse its deterministic stream for op choice
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					rt := rng.Next()
					i++
					if float64(i%6)/6.0 < r.readFrac {
						if _, err := app.GetRec(rt.User, 5*time.Second); err == nil {
							ops.Add(1)
						}
					} else {
						if err := app.AddRating(rt.User, rt.Item, rt.Rating); err == nil {
							ops.Add(1)
						}
					}
				}
			}(c)
		}
		time.Sleep(scale.PointDuration)
		close(stop)
		wg.Wait()
		app.Runtime().Drain(10 * time.Second)

		row := Fig5Row{
			Ratio:      r.name,
			ReadFrac:   r.readFrac,
			Throughput: float64(ops.Load()) / scale.PointDuration.Seconds(),
			Latency:    app.Runtime().CallLatency.Candlestick(),
		}
		rows = append(rows, row)
		app.Stop()
	}

	table := &Table{
		Title:  "Fig 5: CF throughput and latency vs state read/write ratio",
		Note:   "paper: ~10-14k req/s; throughput dips as reads (merge barrier) dominate",
		Header: []string{"ratio(r:w)", "tput(req/s)", "lat p5(ms)", "p25", "p50", "p75", "p95"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Ratio, f0(r.Throughput),
			ms(r.Latency.P5), ms(r.Latency.P25), ms(r.Latency.P50), ms(r.Latency.P75), ms(r.Latency.P95),
		})
	}
	return rows, table, nil
}
