package experiments

import (
	"os"
	"path/filepath"
)

// writeRecord writes one BENCH_*.json record, creating the output
// directory if needed — CI points the benches at bench/out/ so transient
// per-run records never land in the repo root (the committed perf history
// is bench/LEDGER.json alone; see DESIGN.md "Benchmark records").
func writeRecord(outPath string, data []byte) error {
	if dir := filepath.Dir(outPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}
