package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The rolling perf ledger commits one entry per PR so re-anchors can see
// the trajectory instead of digging BENCH_*.json records out of expired CI
// artifact stores. Each entry embeds the raw bench records verbatim,
// keyed by bench name ("wire" for BENCH_wire.json), so the ledger needs no
// schema change when a bench gains a field.

// ledgerSchema versions the ledger file layout itself.
const ledgerSchema = 1

// LedgerEntry is one PR's bench records.
type LedgerEntry struct {
	PR      int                        `json:"pr"`
	Benches map[string]json.RawMessage `json:"benches"`
}

// Ledger is the committed perf history.
type Ledger struct {
	Schema  int           `json:"schema"`
	Entries []LedgerEntry `json:"entries"`
}

// ReadLedger loads a ledger file; a missing file is an empty ledger.
func ReadLedger(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Ledger{Schema: ledgerSchema}, nil
	}
	if err != nil {
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("ledger %s: %w", path, err)
	}
	if l.Schema != ledgerSchema {
		return nil, fmt.Errorf("ledger %s: schema %d, want %d", path, l.Schema, ledgerSchema)
	}
	return &l, nil
}

// UpdateLedger collects every BENCH_*.json in dir into the entry for pr —
// replacing that PR's entry if it exists, appending otherwise — and writes
// the ledger back sorted by PR, so re-running a PR's benches is idempotent.
func UpdateLedger(path string, pr int, dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(matches) == 0 {
		return fmt.Errorf("ledger: no BENCH_*.json records in %s", dir)
	}
	entry := LedgerEntry{PR: pr, Benches: make(map[string]json.RawMessage, len(matches))}
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			return err
		}
		var compact json.RawMessage
		if err := json.Unmarshal(data, &compact); err != nil {
			return fmt.Errorf("ledger: %s is not JSON: %w", m, err)
		}
		name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		entry.Benches[name] = compact
	}
	l, err := ReadLedger(path)
	if err != nil {
		return err
	}
	replaced := false
	for i := range l.Entries {
		if l.Entries[i].PR == pr {
			l.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		l.Entries = append(l.Entries, entry)
	}
	sort.Slice(l.Entries, func(i, j int) bool { return l.Entries[i].PR < l.Entries[j].PR })
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
