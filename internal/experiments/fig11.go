package experiments

import (
	"fmt"
	"time"

	"repro/internal/apps/kv"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/runtime"
)

// Fig11Row is one (state size, strategy) recovery measurement.
type Fig11Row struct {
	StateBytes int64
	M, N       int // m backup nodes -> n recovered nodes
	Recovery   time.Duration
}

// fig11DiskBW keeps restore I/O on the critical path, as the paper's disks
// did for GB-scale state.
const fig11DiskBW = 40 << 20

// Fig11 reproduces Fig. 11: recovery time under the four m-to-n strategies
// {1-1, 2-1, 1-2, 2-2} across state sizes. The paper's shape: 1-to-1 is
// slowest; 2-to-2 is fastest because it parallelises both the disk reads
// and the state reconstruction; at large state, reconstruction dominates
// disk I/O, so adding recovery nodes helps more than adding disks.
func Fig11(scale Scale) ([]Fig11Row, *Table, error) {
	sizes := []int64{2 << 20, 8 << 20, 24 << 20}
	strategies := []struct{ m, n int }{{1, 1}, {2, 1}, {1, 2}, {2, 2}}
	const valueSize = 256
	var rows []Fig11Row

	for _, size := range sizes {
		for _, s := range strategies {
			cl := cluster.New(0, cluster.Config{DiskWriteBW: fig11DiskBW, DiskReadBW: fig11DiskBW})
			// Backup store with exactly m target nodes; chunks = m so each
			// target holds one chunk stream.
			targets := make([]*cluster.Node, s.m)
			for i := range targets {
				targets[i] = cl.AddNode()
			}
			app, err := kv.New(kv.Config{Partitions: 1, Runtime: runtime.Options{
				Cluster:  cl,
				Mode:     checkpoint.ModeAsync,
				Interval: time.Hour, // manual checkpoint only
				Chunks:   s.m,
				Backup:   checkpoint.NewBackup(cl, targets),
			}})
			if err != nil {
				return nil, nil, err
			}
			preloadKV(app, size, valueSize)
			if _, err := app.Runtime().CheckpointNow("store", 0); err != nil {
				return nil, nil, err
			}
			// Fail the store node and measure recovery to n nodes.
			node := findSENode(app.Runtime(), "store")
			app.Runtime().KillNode(node)
			stats, err := app.Runtime().Recover("store", s.n)
			if err != nil {
				return nil, nil, err
			}
			app.Runtime().Drain(30 * time.Second)
			rows = append(rows, Fig11Row{
				StateBytes: size, M: s.m, N: s.n, Recovery: stats.Total,
			})
			app.Stop()
		}
	}

	table := &Table{
		Title:  "Fig 11: recovery time under m-to-n strategies",
		Note:   "paper: 1-to-1 slowest, 2-to-2 fastest; reconstruction dominates at large state",
		Header: []string{"state(MB)", "strategy", "recovery(ms)"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			mb(r.StateBytes), fmt.Sprintf("%d-to-%d", r.M, r.N),
			f0(float64(r.Recovery.Milliseconds())),
		})
	}
	return rows, table, nil
}

func findSENode(rt *runtime.Runtime, se string) int {
	for _, s := range rt.Stats().SEs {
		if s.Name == se && len(s.Nodes) > 0 {
			return s.Nodes[0]
		}
	}
	return -1
}
