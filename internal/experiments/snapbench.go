package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	_ "repro/internal/apps/kv" // registers the kv graph
	"repro/internal/cluster"
	"repro/internal/runtime"
	"repro/internal/wire"
)

// SnapBenchConfig sizes the snapshot-transfer measurement: one in-process
// worker loaded with a kv store, checkpointed once over the streaming
// protocol, with the pre-streaming monolithic MsgSnapshot frame measured
// against it on the same state.
type SnapBenchConfig struct {
	Keys       int // store size in keys (default 20_000)
	ValueBytes int // value payload per key (default 64)
	ChunkBytes int // streamed part payload bound (default 64 KiB)
}

func (c SnapBenchConfig) withDefaults() SnapBenchConfig {
	if c.Keys <= 0 {
		c.Keys = 20_000
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 64
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 64 << 10
	}
	return c
}

// SnapBenchResult compares the streamed snapshot pull against the
// monolithic frame the v1 protocol would have moved for the same state.
// Every figure is a deterministic byte or chunk count (the repo's bench
// policy bans wall-clock assertions); PeakFrameBytes is the coordinator's
// actual in-flight buffering bound, which is the number the streaming
// refactor exists to shrink.
type SnapBenchResult struct {
	Keys       int `json:"keys"`
	ValueBytes int `json:"value_bytes"`
	ChunkBytes int `json:"chunk_bytes"`

	Chunks          int     `json:"chunks"`             // parts pulled by the streaming checkpoint
	RawBytes        int64   `json:"raw_bytes"`          // encoded part bytes before retention compression
	StoredBytes     int64   `json:"stored_bytes"`       // bytes the coordinator retains (post-flate)
	PeakFrameBytes  int64   `json:"peak_frame_bytes"`   // largest single snapshot-path frame
	MonolithicBytes int64   `json:"monolithic_bytes"`   // the v1 MsgSnapshot reply for the same state
	PeakVsMonolith  float64 `json:"peak_vs_monolithic"` // PeakFrameBytes / MonolithicBytes
	V1Fallbacks     int     `json:"v1_fallbacks"`
}

// RunSnapBench loads one worker, checkpoints it over the streaming
// protocol, and measures the monolithic alternative on identical state.
func RunSnapBench(cfg SnapBenchConfig) (SnapBenchResult, error) {
	cfg = cfg.withDefaults()
	res := SnapBenchResult{Keys: cfg.Keys, ValueBytes: cfg.ValueBytes, ChunkBytes: cfg.ChunkBytes}

	w := runtime.NewWorker()
	defer w.Close()
	ep := runtime.WorkerEndpoint{
		Data:    cluster.Local(w.Handler(), 0),
		Control: cluster.Local(w.Handler(), 0),
	}
	coord, err := runtime.NewCoordinator("kv", []runtime.WorkerEndpoint{ep}, runtime.CoordOptions{
		Partitions:     map[string]int{"store": 2},
		SnapChunkBytes: cfg.ChunkBytes,
	})
	if err != nil {
		return res, err
	}
	defer coord.Close()

	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte(i)
	}
	const batch = 512
	items := make([]runtime.InjectItem, 0, batch)
	for k := 0; k < cfg.Keys; k++ {
		items = append(items, runtime.InjectItem{Key: uint64(k), Value: val})
		if len(items) == batch || k == cfg.Keys-1 {
			if err := coord.InjectBatch("put", items); err != nil {
				return res, fmt.Errorf("snap bench: inject: %w", err)
			}
			items = items[:0]
		}
	}
	if !coord.Drain(60 * time.Second) {
		return res, fmt.Errorf("snap bench: deployment did not quiesce")
	}

	// The monolithic baseline first: the exact frame the v1 protocol would
	// move, measured on the same loaded state via the worker's own handler.
	reqFrame, err := wire.Encode(wire.MsgSnapshotReq, wire.SnapshotReq{Chunks: 2})
	if err != nil {
		return res, err
	}
	mono := cluster.Local(w.Handler(), 0)
	resp, err := mono.Call(reqFrame)
	mono.Close()
	if err != nil {
		return res, fmt.Errorf("snap bench: monolithic snapshot: %w", err)
	}
	res.MonolithicBytes = int64(len(resp))

	if err := coord.Checkpoint(); err != nil {
		return res, fmt.Errorf("snap bench: checkpoint: %w", err)
	}
	stats := coord.SnapshotStats()
	res.Chunks = stats.Chunks
	res.RawBytes = stats.RawBytes
	res.StoredBytes = stats.StoredBytes
	res.PeakFrameBytes = stats.PeakFrameBytes
	res.V1Fallbacks = stats.V1Fallbacks
	if res.MonolithicBytes > 0 {
		res.PeakVsMonolith = float64(res.PeakFrameBytes) / float64(res.MonolithicBytes)
	}

	// Sanity: the streamed transfer must actually have split the state and
	// bounded the coordinator's largest frame below the monolithic one, or
	// the record above measures a broken configuration.
	if res.Chunks <= 1 {
		return res, fmt.Errorf("snap bench: state streamed as %d chunk(s); expected a split", res.Chunks)
	}
	if res.RawBytes <= 0 {
		return res, fmt.Errorf("snap bench: streamed 0 bytes")
	}
	if res.V1Fallbacks != 0 {
		return res, fmt.Errorf("snap bench: coordinator fell back to the monolithic protocol %d time(s)", res.V1Fallbacks)
	}
	if res.PeakFrameBytes >= res.MonolithicBytes {
		return res, fmt.Errorf("snap bench: peak streamed frame %d B not below monolithic %d B",
			res.PeakFrameBytes, res.MonolithicBytes)
	}
	return res, nil
}

// WriteSnapBench runs the snapshot-transfer benchmark, prints a summary
// table, and (when outPath is non-empty) writes the structured result as
// JSON for CI and the perf ledger.
func WriteSnapBench(w io.Writer, cfg SnapBenchConfig, outPath string) error {
	res, err := RunSnapBench(cfg)
	if err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	tbl := &Table{
		Title:  "snapshot transfer: streamed chunks vs monolithic frame",
		Note:   fmt.Sprintf("%d keys x %d B values, %d B chunk bound", cfg.Keys, cfg.ValueBytes, cfg.ChunkBytes),
		Header: []string{"protocol", "chunks", "raw B", "retained B", "peak frame B"},
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"streamed", fmt.Sprintf("%d", res.Chunks), fmt.Sprintf("%d", res.RawBytes),
			fmt.Sprintf("%d", res.StoredBytes), fmt.Sprintf("%d", res.PeakFrameBytes)},
		[]string{"monolithic", "1", fmt.Sprintf("%d", res.MonolithicBytes), "-",
			fmt.Sprintf("%d", res.MonolithicBytes)},
	)
	tbl.Fprint(w)
	fmt.Fprintf(w, "peak in-flight frame is %.1f%% of the monolithic snapshot\n\n", 100*res.PeakVsMonolith)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return writeRecord(outPath, data)
}
