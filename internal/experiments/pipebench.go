package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	goruntime "runtime"
	"time"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/state"
)

// PipeBenchConfig sizes the batched-pipeline throughput measurement: a
// stateless fan-out entry TE feeding a partitioned dictionary sink over a
// partitioned dataflow edge, swept across micro-batch sizes.
type PipeBenchConfig struct {
	Items      int   // externally injected items per batch size (default 20k)
	FanOut     int   // downstream emissions per injected item (default 16)
	ValueBytes int   // payload bytes per emitted value (default 16)
	Partitions int   // sink SE partitions (default 4)
	BatchSizes []int // sweep (default 1, 4, 16, 64, 256)
}

func (c PipeBenchConfig) withDefaults() PipeBenchConfig {
	if c.Items <= 0 {
		c.Items = 20_000
	}
	if c.FanOut <= 0 {
		c.FanOut = 16
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 16
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = []int{1, 4, 16, 64, 256}
	}
	return c
}

// PipeBenchResult records the hot-path cost for one micro-batch size.
// AllocsPerItem is the headline number — it is deterministic on any
// machine, unlike wall-clock throughput, which is reported for context
// only (per the repo's single-core measurement policy).
type PipeBenchResult struct {
	BatchSize     int     `json:"batch_size"`
	Injected      int     `json:"injected_items"`
	Delivered     int64   `json:"delivered_items"`
	ItemsPerSec   float64 `json:"items_per_sec"`
	NsPerItem     int64   `json:"ns_per_item"`
	AllocsPerItem float64 `json:"allocs_per_item"`
	BatchP50      int64   `json:"batch_size_p50"`
	BatchMean     float64 `json:"batch_size_mean"`
}

// pipeBenchGraph builds the measured pipeline: src fans each injected item
// out FanOut ways on a partitioned edge; sink writes each into a
// partitioned KVMap. The interesting cost is the internal edge — routing,
// grouping, enqueueing and processing — which dominates the injection
// overhead by the fan-out factor.
func pipeBenchGraph(fanOut, valueBytes int) *core.Graph {
	// Box the shared payload once: converting a []byte to `any` per Emit
	// would put an allocation back on the measured path.
	var value any = make([]byte, valueBytes)
	g := core.NewGraph("pipe-bench")
	se := g.AddSE("sink-store", core.KindPartitioned, state.TypeKVMap, nil)
	src := g.AddTE("src", func(ctx core.Context, it core.Item) {
		// Keys cycle through a bounded space so the sink map reaches a
		// steady state and the measurement isolates pipeline cost rather
		// than dictionary growth.
		const keySpace = 1 << 12
		base := it.Key * uint64(fanOut)
		for f := 0; f < fanOut; f++ {
			ctx.Emit(0, (base+uint64(f))%keySpace, value)
		}
	}, nil, true)
	sink := g.AddTE("sink", func(ctx core.Context, it core.Item) {
		ctx.Store().(state.KV).Put(it.Key, it.Value.([]byte))
	}, &core.Access{SE: se, Mode: core.AccessByKey}, false)
	g.Connect(src, sink, core.DispatchPartitioned)
	return g
}

// RunPipeBench measures the dataflow hot path at one micro-batch size.
func RunPipeBench(cfg PipeBenchConfig, batchSize int) (PipeBenchResult, error) {
	cfg = cfg.withDefaults()
	rt, err := runtime.Deploy(pipeBenchGraph(cfg.FanOut, cfg.ValueBytes), runtime.Options{
		Partitions: map[string]int{"sink-store": cfg.Partitions},
		BatchSize:  batchSize,
		QueueLen:   4096,
	})
	if err != nil {
		return PipeBenchResult{}, err
	}
	defer rt.Stop()

	// Warm the pipeline so snapshot caches and scratch buffers are sized
	// before measurement starts.
	for k := uint64(0); k < 64; k++ {
		if err := rt.Inject("src", k, nil); err != nil {
			return PipeBenchResult{}, err
		}
	}
	if !rt.Drain(30 * time.Second) {
		return PipeBenchResult{}, fmt.Errorf("pipe bench: warm-up did not drain")
	}
	rt.BatchSizes.Reset()
	warmed := rt.Processed("sink")

	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	start := time.Now()
	for k := uint64(0); k < uint64(cfg.Items); k++ {
		if err := rt.Inject("src", k, nil); err != nil {
			return PipeBenchResult{}, err
		}
	}
	if !rt.Drain(120 * time.Second) {
		return PipeBenchResult{}, fmt.Errorf("pipe bench: batch=%d did not drain", batchSize)
	}
	elapsed := time.Since(start)
	goruntime.ReadMemStats(&after)

	delivered := rt.Processed("sink") - warmed
	if delivered <= 0 {
		return PipeBenchResult{}, fmt.Errorf("pipe bench: nothing delivered at batch=%d", batchSize)
	}
	// In per-item mode the runtime skips batch-size recording (every batch
	// has size 1 by construction), so report the definitional value.
	p50, mean := int64(1), 1.0
	if batchSize > 1 {
		p50, mean = rt.BatchSizes.Percentile(50), rt.BatchSizes.Mean()
	}
	allocs := after.Mallocs - before.Mallocs
	return PipeBenchResult{
		BatchSize:     batchSize,
		Injected:      cfg.Items,
		Delivered:     delivered,
		ItemsPerSec:   float64(delivered) / elapsed.Seconds(),
		NsPerItem:     elapsed.Nanoseconds() / delivered,
		AllocsPerItem: float64(allocs) / float64(delivered),
		BatchP50:      p50,
		BatchMean:     mean,
	}, nil
}

// WritePipeBench sweeps the configured micro-batch sizes, prints a summary
// table, and (when outPath is non-empty) writes the structured results as
// JSON so CI records the hot-path perf trajectory alongside the checkpoint
// record.
func WritePipeBench(w io.Writer, cfg PipeBenchConfig, outPath string) error {
	cfg = cfg.withDefaults()
	var results []PipeBenchResult
	for _, b := range cfg.BatchSizes {
		r, err := RunPipeBench(cfg, b)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	tbl := &Table{
		Title: "pipeline hot path: micro-batch sweep",
		Note: fmt.Sprintf("%d injected x %d fan-out, %d partitions, %d B values",
			cfg.Items, cfg.FanOut, cfg.Partitions, cfg.ValueBytes),
		Header: []string{"batch", "items/s", "ns/item", "allocs/item", "batch p50"},
	}
	for _, r := range results {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", r.BatchSize),
			fmt.Sprintf("%.0f", r.ItemsPerSec),
			fmt.Sprintf("%d", r.NsPerItem),
			fmt.Sprintf("%.3f", r.AllocsPerItem),
			fmt.Sprintf("%d", r.BatchP50),
		})
	}
	tbl.Fprint(w)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return writeRecord(outPath, data)
}
