// Package experiments contains one driver per table and figure of the
// paper's evaluation (§6). Each driver runs the relevant systems at a
// laptop-scale version of the paper's parameters and returns both a
// formatted table (the rows the paper plots) and structured results that
// the benchmark harness asserts shape properties on (who wins, by roughly
// what factor, where crossovers fall).
//
// Scaling: state sizes are MB instead of GB, checkpoint intervals are
// hundreds of milliseconds instead of 10 s, and node counts are bounded by
// the local core count. EXPERIMENTS.md records the mapping per figure.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Scale selects how long each measurement point runs.
type Scale struct {
	// PointDuration is the measurement window per configuration point.
	PointDuration time.Duration
	// Clients is the number of concurrent open-loop request drivers.
	Clients int
}

// Quick is the default scale used by `go test -bench` (seconds per figure).
var Quick = Scale{PointDuration: 400 * time.Millisecond, Clients: 8}

// Full is the scale used by the standalone harness for smoother numbers.
var Full = Scale{PointDuration: 1500 * time.Millisecond, Clients: 16}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}
