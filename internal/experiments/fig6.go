package experiments

import (
	"time"

	"repro/internal/apps/kv"
	"repro/internal/baselines/naiadsim"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/state"
	"repro/internal/workload"
)

// Fig6Row is one (system, state size) point of the single-node KV sweep.
type Fig6Row struct {
	System     string
	StateBytes int64
	Throughput float64 // requests/s
	P95        time.Duration
	// WorstPause is the longest stop-the-world checkpoint pause observed
	// (Naiad baselines only; zero for SDG, whose dirty-state protocol has
	// no whole-state pause). Unlike throughput ratios, this is driven by
	// the modelled disk bandwidth and is deterministic across machines.
	WorstPause time.Duration
}

// fig6DiskBW is the modelled disk bandwidth; checkpoints of MB-scale state
// take hundreds of ms, matching the paper's GB-scale state on real disks.
const fig6DiskBW = 40 << 20 // 40 MB/s

// fig6Interval is the scaled checkpoint period (paper: 10 s).
const fig6Interval = 300 * time.Millisecond

// fig6Sizes is the default state-size sweep (paper: 0.5-6 GB, scaled).
var fig6Sizes = []int64{1 << 20, 4 << 20, 16 << 20}

// Fig6 reproduces Fig. 6: single-node KV store throughput and latency as
// state grows, SDG vs Naiad-Disk vs Naiad-NoDisk. The paper's shape: SDG is
// largely unaffected by state size; Naiad-Disk collapses; even Naiad-NoDisk
// loses ~63% at the largest state because its stop-the-world checkpoint
// stalls processing.
func Fig6(scale Scale) ([]Fig6Row, *Table, error) {
	return fig6(scale, fig6Sizes)
}

// fig6 runs the sweep over explicit sizes so tests can trim the domain.
// Checkpoint-stall effects only show when the measurement window covers
// several fig6Interval periods; shorter windows yield pure-throughput noise.
func fig6(scale Scale, sizes []int64) ([]Fig6Row, *Table, error) {
	const valueSize = 256
	var rows []Fig6Row

	for _, size := range sizes {
		// --- SDG ---
		cl := cluster.New(0, cluster.Config{DiskWriteBW: fig6DiskBW, DiskReadBW: fig6DiskBW})
		app, err := kv.New(kv.Config{Partitions: 1, Runtime: runtime.Options{
			Cluster:  cl,
			Mode:     checkpoint.ModeAsync,
			Interval: fig6Interval,
			Chunks:   2,
		}})
		if err != nil {
			return nil, nil, err
		}
		keys := preloadKV(app, size, valueSize)
		tput, lat := driveKV(app, 0 /* updates */, valueSize, keys, scale)
		rows = append(rows, Fig6Row{System: "SDG", StateBytes: size, Throughput: tput, P95: lat.P95})
		app.Stop()

		// --- Naiad baselines ---
		for _, variant := range []struct {
			name string
			disk *cluster.Disk
		}{
			{"Naiad-Disk", cluster.NewDisk(fig6DiskBW, fig6DiskBW)},
			{"Naiad-NoDisk", nil},
		} {
			tput, p95, pause := runFig6Naiad(variant.disk, size, valueSize, scale)
			rows = append(rows, Fig6Row{System: variant.name, StateBytes: size, Throughput: tput, P95: p95, WorstPause: pause})
		}
	}

	table := &Table{
		Title:  "Fig 6: KV throughput/latency vs state size, single node",
		Note:   "paper: SDG flat; Naiad-Disk collapses; Naiad-NoDisk -63% at max state",
		Header: []string{"state(MB)", "system", "tput(req/s)", "p95 lat(ms)", "worst pause(ms)"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			mb(r.StateBytes), r.System, f0(r.Throughput), ms(r.P95), ms(r.WorstPause),
		})
	}
	return rows, table, nil
}

func runFig6Naiad(disk *cluster.Disk, size int64, valueSize int, scale Scale) (float64, time.Duration, time.Duration) {
	kvm := newPreloadedKVMap(size, valueSize)
	keys := uint64(kvm.NumEntries())
	e := naiadsim.New(naiadsim.Config{
		BatchSize:       500,
		CheckpointEvery: fig6Interval,
		Disk:            disk,
		Apply: func(batch []naiadsim.Item) {
			for _, it := range batch {
				kvm.Put(it.Key, it.Value.([]byte))
			}
		},
		Snapshot: func() []byte {
			chunks, err := kvm.Checkpoint(1)
			if err != nil {
				return nil
			}
			return chunks[0].Data
		},
	})
	defer e.Stop()

	done := make(chan struct{})
	lat := metrics.NewHistogram(0)
	var completed int64
	go func() {
		defer close(done)
		gen := workload.NewKVGen(7, keys, 0, valueSize)
		deadline := time.Now().Add(scale.PointDuration)
		for time.Now().Before(deadline) {
			op := gen.Next()
			start := time.Now()
			if err := e.SubmitSync(naiadsim.Item{Key: op.Key, Value: op.Value}, 30*time.Second); err != nil {
				return
			}
			lat.Record(time.Since(start))
			completed++
		}
	}()
	// Background open-loop writers add throughput pressure like the SDG's
	// concurrent clients.
	stop := make(chan struct{})
	for c := 0; c < scale.Clients-1; c++ {
		go func(c int) {
			gen := workload.NewKVGen(int64(100+c), keys, 0, valueSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				if err := e.Submit(naiadsim.Item{Key: op.Key, Value: op.Value}); err != nil {
					return
				}
			}
		}(c)
	}
	<-done
	close(stop)
	tput := float64(e.Processed()) / scale.PointDuration.Seconds()
	return tput, lat.Percentile(95), e.CheckpointPauses().Max()
}

func newPreloadedKVMap(targetBytes int64, valueSize int) *state.KVMap {
	kvm := state.NewKVMap()
	perEntry := int64(valueSize + 56)
	for key := uint64(0); int64(key) < targetBytes/perEntry; key++ {
		kvm.Put(key, make([]byte, valueSize))
	}
	return kvm
}
