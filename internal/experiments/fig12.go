package experiments

import (
	"time"

	"repro/internal/apps/kv"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/runtime"
)

// Fig12Row is one (mode, state size) point of the checkpointing comparison.
type Fig12Row struct {
	Mode       string
	StateBytes int64
	Throughput float64
	// Worst is the maximum observed request latency. With closed-loop
	// drivers a checkpoint stall hits only the in-flight requests, so tail
	// percentiles under-weight it; the paper's open-loop 99th-percentile
	// explosion corresponds to the worst-case request here.
	Worst time.Duration
}

// Fig12 reproduces Fig. 12: synchronous vs asynchronous checkpointing as
// state grows. The paper: sync loses 33% throughput at the largest state
// with seconds of latency (the system stops while checkpointing); async
// costs ~5% throughput and keeps latency an order of magnitude lower, only
// moderately growing — because only the dirty-state merge locks the SE.
func Fig12(scale Scale) ([]Fig12Row, *Table, error) {
	sizes := []int64{2 << 20, 8 << 20, 16 << 20}
	const valueSize = 256
	// Several checkpoints must land inside the measurement window for the
	// modes to differ (the paper runs minutes at a 10 s interval).
	interval := scale.PointDuration / 4
	var rows []Fig12Row

	for _, size := range sizes {
		for _, mode := range []checkpoint.Mode{checkpoint.ModeSync, checkpoint.ModeAsync} {
			cl := cluster.New(0, cluster.Config{DiskWriteBW: fig6DiskBW, DiskReadBW: fig6DiskBW})
			app, err := kv.New(kv.Config{Partitions: 1, Runtime: runtime.Options{
				Cluster:  cl,
				Mode:     mode,
				Interval: interval,
				Chunks:   2,
			}})
			if err != nil {
				return nil, nil, err
			}
			keys := preloadKV(app, size, valueSize)
			tput, _ := driveKV(app, 0, valueSize, keys, scale)
			worst := app.Runtime().CallLatency.Max()
			rows = append(rows, Fig12Row{
				Mode: mode.String(), StateBytes: size, Throughput: tput, Worst: worst,
			})
			app.Stop()
		}
	}

	table := &Table{
		Title:  "Fig 12: synchronous vs asynchronous checkpointing",
		Note:   "paper: sync -33% tput and 2-8s p99 at large state; async ~5% impact, 200-500ms",
		Header: []string{"state(MB)", "mode", "tput(req/s)", "worst lat(ms)"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			mb(r.StateBytes), r.Mode, f0(r.Throughput), ms(r.Worst),
		})
	}
	return rows, table, nil
}
