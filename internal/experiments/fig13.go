package experiments

import (
	"time"

	"repro/internal/apps/kv"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/runtime"
)

// Fig13Row is one point of the checkpoint overhead sweep.
type Fig13Row struct {
	Label      string // frequency or size label; "No FT" for the baseline
	Interval   time.Duration
	StateBytes int64
	Latency    metrics.Candlestick
	// Worst is the maximum observed request latency; with closed-loop
	// drivers it is the metric that exposes checkpoint interference (cf.
	// Fig12Row.Worst).
	Worst time.Duration
}

// Fig13 reproduces Fig. 13: the impact of checkpoint frequency (top) and
// state size (bottom) on processing latency, against a No-FT baseline. The
// paper: without fault tolerance p95 is 68 ms; checkpointing 1 GB every
// 10 s raises it to 500 ms; higher frequency or larger state degrade
// latency roughly proportionally, because the overhead is the dirty-state
// merge plus the checkpoint writes.
func Fig13(scale Scale) (freqRows, sizeRows []Fig13Row, table *Table, err error) {
	const valueSize = 256

	run := func(mode checkpoint.Mode, interval time.Duration, size int64) (metrics.Candlestick, time.Duration, error) {
		cl := cluster.New(0, cluster.Config{DiskWriteBW: fig6DiskBW, DiskReadBW: fig6DiskBW})
		app, err := kv.New(kv.Config{Partitions: 1, Runtime: runtime.Options{
			Cluster:  cl,
			Mode:     mode,
			Interval: interval,
			Chunks:   2,
		}})
		if err != nil {
			return metrics.Candlestick{}, 0, err
		}
		defer app.Stop()
		keys := preloadKV(app, size, valueSize)
		_, lat := driveKV(app, 0, valueSize, keys, scale)
		return lat, app.Runtime().CallLatency.Max(), nil
	}

	// Top: frequency sweep at fixed state (paper: 2-10 s; scaled so that
	// the fastest cadence checkpoints several times per measurement).
	const freqState = 8 << 20
	freqs := []time.Duration{scale.PointDuration / 8, scale.PointDuration / 4, scale.PointDuration / 2}
	for _, f := range freqs {
		lat, worst, err := run(checkpoint.ModeAsync, f, freqState)
		if err != nil {
			return nil, nil, nil, err
		}
		freqRows = append(freqRows, Fig13Row{
			Label: ms(f) + "ms", Interval: f, StateBytes: freqState, Latency: lat, Worst: worst,
		})
	}
	latNoFT, worstNoFT, err := run(checkpoint.ModeOff, time.Hour, freqState)
	if err != nil {
		return nil, nil, nil, err
	}
	freqRows = append(freqRows, Fig13Row{Label: "No FT", StateBytes: freqState, Latency: latNoFT, Worst: worstNoFT})

	// Bottom: size sweep at fixed frequency (paper: 1-5 GB; scaled).
	sizeInterval := scale.PointDuration / 4
	sizes := []int64{2 << 20, 8 << 20, 20 << 20}
	sizeRows = append(sizeRows, Fig13Row{Label: "No FT", Latency: latNoFT, Worst: worstNoFT})
	for _, s := range sizes {
		lat, worst, err := run(checkpoint.ModeAsync, sizeInterval, s)
		if err != nil {
			return nil, nil, nil, err
		}
		sizeRows = append(sizeRows, Fig13Row{
			Label: mb(s) + "MB", Interval: sizeInterval, StateBytes: s, Latency: lat, Worst: worst,
		})
	}

	table = &Table{
		Title:  "Fig 13: checkpoint frequency and size vs processing latency",
		Note:   "paper: No-FT p95 68ms -> 500ms at 1GB/10s; degrades ~proportionally with frequency and size",
		Header: []string{"sweep", "config", "p50(ms)", "p95(ms)", "worst(ms)"},
	}
	for _, r := range freqRows {
		table.Rows = append(table.Rows, []string{
			"frequency", r.Label, ms(r.Latency.P50), ms(r.Latency.P95), ms(r.Worst),
		})
	}
	for _, r := range sizeRows {
		table.Rows = append(table.Rows, []string{
			"state size", r.Label, ms(r.Latency.P50), ms(r.Latency.P95), ms(r.Worst),
		})
	}
	return freqRows, sizeRows, table, nil
}
