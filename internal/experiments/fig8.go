package experiments

import (
	"time"

	"repro/internal/apps/wordcount"
	"repro/internal/baselines/naiadsim"
	"repro/internal/baselines/sparksim"
	"repro/internal/workload"
)

// Fig8Row is one (system, window) point of the streaming wordcount sweep.
type Fig8Row struct {
	System      string
	Window      time.Duration
	Throughput  float64 // words/s
	Sustainable bool
}

// Fig8 reproduces Fig. 8: streaming wordcount throughput across window
// sizes for SDG, Streaming Spark, Naiad-LowLatency (small batches) and
// Naiad-HighThroughput (large batches). The paper's shape: only SDG and
// Naiad-LowLatency sustain all windows, with SDG faster; Streaming Spark
// collapses below a 250 ms window; Naiad-HighThroughput has the highest
// throughput but cannot support windows under 100 ms.
func Fig8(scale Scale) ([]Fig8Row, *Table, error) {
	// Scaled windows (paper sweeps 10 ms - 10 s).
	windows := []time.Duration{
		5 * time.Millisecond,
		20 * time.Millisecond,
		60 * time.Millisecond,
		150 * time.Millisecond,
	}
	const lineWords = 10
	var rows []Fig8Row
	for _, win := range windows {
		// --- SDG: pipelined, fine-grained updates, no batching. ---
		sdgTput, sdgOK, err := runFig8SDG(win, lineWords, scale)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Fig8Row{System: "SDG", Window: win, Throughput: sdgTput, Sustainable: sdgOK})

		// --- Streaming Spark: micro-batch == window, immutable state. ---
		rows = append(rows, runFig8Spark(win, lineWords, scale))

		// --- Naiad variants: batch size decouples from window. ---
		rows = append(rows, runFig8Naiad("Naiad-LowLatency", 100, win, lineWords, scale))
		rows = append(rows, runFig8Naiad("Naiad-HighThroughput", 20000, win, lineWords, scale))
	}

	table := &Table{
		Title:  "Fig 8: streaming wordcount throughput vs window size",
		Note:   "paper: SDG & Naiad-LowLat sustain all windows (SDG faster); Spark collapses below 250ms; Naiad-HighTput fastest but fails <100ms",
		Header: []string{"window(ms)", "system", "tput(words/s)", "sustainable"},
	}
	for _, r := range rows {
		sus := "yes"
		if !r.Sustainable {
			sus = "NO"
		}
		table.Rows = append(table.Rows, []string{
			ms(r.Window), r.System, f0(r.Throughput), sus,
		})
	}
	return rows, table, nil
}

func runFig8SDG(win time.Duration, lineWords int, scale Scale) (float64, bool, error) {
	app, err := wordcount.New(wordcount.Config{Window: win, Partitions: 2})
	if err != nil {
		return 0, false, err
	}
	defer app.Stop()
	gen := workload.NewTextGen(3, 5000)
	deadline := time.Now().Add(scale.PointDuration)
	var fedWords int64
	for time.Now().Before(deadline) {
		line := gen.Line(lineWords)
		if err := app.Feed(line); err != nil {
			break
		}
		fedWords += int64(lineWords)
	}
	app.Runtime().Drain(10 * time.Second)
	processed := app.Runtime().Processed("count")
	tput := float64(processed) / scale.PointDuration.Seconds()
	// Sustainable: the pipeline kept up with the offered load.
	sustainable := processed >= fedWords*9/10
	return tput, sustainable, nil
}

func runFig8Spark(win time.Duration, lineWords int, scale Scale) Fig8Row {
	e := sparksim.NewStreaming(sparksim.StreamingConfig{
		Interval:   win,
		TaskLaunch: 8 * time.Millisecond, // scheduled micro-batch launch cost
	})
	defer e.Stop()
	gen := workload.NewTextGen(3, 5000)
	deadline := time.Now().Add(scale.PointDuration)
	for time.Now().Before(deadline) {
		e.Feed(gen.Line(lineWords))
	}
	time.Sleep(2 * win) // let the last batch fire
	tput := float64(e.Processed()) / scale.PointDuration.Seconds()
	// Unsustainable when micro-batches complete later than their window:
	// window results then always arrive late, which is the paper's
	// "throughput collapses" regime.
	sustainable := e.MaxLag() < win
	return Fig8Row{System: "StreamingSpark", Window: win, Throughput: tput, Sustainable: sustainable}
}

func runFig8Naiad(name string, batchSize int, win time.Duration, lineWords int, scale Scale) Fig8Row {
	counts := map[string]uint64{}
	curWin := uint64(0)
	e := naiadsim.New(naiadsim.Config{
		BatchSize:  batchSize,
		SchedDelay: 500 * time.Microsecond,
		Linger:     2 * time.Millisecond,
		Apply: func(batch []naiadsim.Item) {
			for _, it := range batch {
				msg := it.Value.(wcWord)
				if msg.win > curWin {
					// Window rotation happens only at batch granularity;
					// whether one batch fits inside the window determines
					// sustainability below.
					counts = map[string]uint64{}
					curWin = msg.win
				}
				counts[msg.word]++
			}
		},
		Snapshot: func() []byte { return nil },
	})
	defer e.Stop()
	gen := workload.NewTextGen(3, 5000)
	start := time.Now()
	deadline := start.Add(scale.PointDuration)
	var fed int64
	for now := time.Now(); now.Before(deadline); now = time.Now() {
		win64 := uint64(now.UnixNano() / int64(win))
		for i := 0; i < lineWords; i++ {
			if err := e.Submit(naiadsim.Item{Value: wcWord{word: gen.Word(), win: win64}}); err != nil {
				break
			}
			fed++
		}
	}
	// Drain remaining items briefly.
	drainDeadline := time.Now().Add(time.Second)
	for e.Backlog() > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(time.Millisecond)
	}
	tput := float64(e.Processed()) / scale.PointDuration.Seconds()
	// A batch spans fill time plus scheduling; the window is unsustainable
	// when one batch cannot turn around within it at the achieved rate,
	// because window results then arrive later than the window itself.
	fill := time.Duration(float64(batchSize) / tput * float64(time.Second))
	batchPeriod := fill + 500*time.Microsecond // sched delay
	sustainable := batchPeriod <= win
	return Fig8Row{System: name, Window: win, Throughput: tput, Sustainable: sustainable}
}

// wcWord is the naiadsim wordcount payload.
type wcWord struct {
	word string
	win  uint64
}
