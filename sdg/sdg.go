// Package sdg is the public API of the stateful dataflow graph (SDG)
// library, a Go implementation of "Making State Explicit for Imperative Big
// Data Processing" (Fernandez et al., USENIX ATC 2014).
//
// An SDG is a pipelined dataflow of task elements (TEs) over explicit
// mutable state elements (SEs). State is distributed either partitioned
// (disjoint splits by access key) or partial (independent replicas merged
// on demand). Deployments checkpoint state asynchronously using dirty-state
// overlays and recover failed nodes by m-to-n parallel restore plus replay
// of logged dataflows.
//
// Build a graph with NewGraph, add state and tasks, connect them, then
// Deploy:
//
//	b := sdg.NewGraph("kv")
//	store := b.PartitionedState("store", sdg.StoreKVMap)
//	b.Task("put", putFn, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(store)})
//	sys, err := b.Deploy(sdg.Options{})
package sdg

import (
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/state"
)

// Re-exported dataflow types. Task functions receive a Context for state
// access and emission, and the Item being processed.
type (
	// Context is the execution environment of a task function.
	Context = core.Context
	// Item is one data element flowing through the graph.
	Item = core.Item
	// TaskFunc is a task element's computation.
	TaskFunc = core.TaskFunc
	// Collection is the payload delivered to merge tasks after an
	// all-to-one gather.
	Collection = core.Collection
	// Candlestick is the five-number latency summary used by the paper.
	Candlestick = metrics.Candlestick
)

// Dispatch semantics for dataflow edges (§3.1/§4.2 of the paper).
type Dispatch = core.Dispatch

// Dispatch constants.
const (
	Partitioned = core.DispatchPartitioned
	OneToAny    = core.DispatchOneToAny
	OneToAll    = core.DispatchOneToAll
	AllToOne    = core.DispatchAllToOne
)

// StoreType selects a state element data structure.
type StoreType = state.StoreType

// Store type constants.
const (
	StoreKVMap        = state.TypeKVMap
	StoreMatrix       = state.TypeMatrix
	StoreDenseMatrix  = state.TypeDenseMatrix
	StoreVector       = state.TypeVector
	StoreShardedKVMap = state.TypeShardedKVMap
)

// Concrete state element types, for use inside task functions via
// Context.Store().
type (
	// KVMap is a dictionary store.
	KVMap = state.KVMap
	// ShardedKVMap is the lock-striped dictionary store.
	ShardedKVMap = state.ShardedKVMap
	// KV is the dictionary interface satisfied by both KVMap and
	// ShardedKVMap; task functions should assert to it so deployments can
	// swap backends via Options.KVShards.
	KV = state.KV
	// Matrix is an indexed sparse matrix store.
	Matrix = state.Matrix
	// DenseMatrix is a dense row-major matrix store.
	DenseMatrix = state.DenseMatrix
	// Vector is a dense vector store.
	Vector = state.Vector
)

// CheckpointMode selects the fault-tolerance strategy.
type CheckpointMode = checkpoint.Mode

// Checkpoint modes.
const (
	// FTOff disables checkpointing.
	FTOff = checkpoint.ModeOff
	// FTAsync is the paper's asynchronous dirty-state checkpointing.
	FTAsync = checkpoint.ModeAsync
	// FTSync is stop-the-world checkpointing (baseline behaviour).
	FTSync = checkpoint.ModeSync
)

// StateID references a state element in a GraphBuilder.
type StateID int

// TaskID references a task element in a GraphBuilder.
type TaskID int

// GraphBuilder assembles an SDG.
type GraphBuilder struct {
	g *core.Graph
}

// NewGraph starts a new SDG definition.
func NewGraph(name string) *GraphBuilder {
	return &GraphBuilder{g: core.NewGraph(name)}
}

// PartitionedState declares a partitioned SE: its contents split into
// disjoint instances by access key (@Partitioned in the paper).
func (b *GraphBuilder) PartitionedState(name string, t StoreType) StateID {
	return StateID(b.g.AddSE(name, core.KindPartitioned, t, nil))
}

// PartialState declares a partial SE: independent replicas, one per
// instance, reconciled by merge tasks (@Partial in the paper).
func (b *GraphBuilder) PartialState(name string, t StoreType) StateID {
	return StateID(b.g.AddSE(name, core.KindPartial, t, nil))
}

// PartialStateWith declares a partial SE with a custom store constructor
// (e.g. a pre-sized Vector).
func (b *GraphBuilder) PartialStateWith(name string, t StoreType, build func() state.Store) StateID {
	return StateID(b.g.AddSE(name, core.KindPartial, t, build))
}

// TaskOptions configures a task element. At most one of ByKeyState,
// LocalState and GlobalState may be set (a TE accesses at most one SE).
type TaskOptions struct {
	// Entry marks the task as an external entry point.
	Entry bool
	// ByKeyState grants partitioned access: the item key selects the local
	// partition (@Partitioned access).
	ByKeyState *StateID
	// LocalState grants access to the colocated partial replica.
	LocalState *StateID
	// GlobalState grants access to all partial replicas (@Global): the
	// task runs on every replica and results flow to a merge task.
	GlobalState *StateID
}

// Task declares a task element.
func (b *GraphBuilder) Task(name string, fn TaskFunc, opts TaskOptions) TaskID {
	var access *core.Access
	switch {
	case opts.ByKeyState != nil:
		access = &core.Access{SE: int(*opts.ByKeyState), Mode: core.AccessByKey}
	case opts.LocalState != nil:
		access = &core.Access{SE: int(*opts.LocalState), Mode: core.AccessLocal}
	case opts.GlobalState != nil:
		access = &core.Access{SE: int(*opts.GlobalState), Mode: core.AccessGlobal}
	}
	return TaskID(b.g.AddTE(name, fn, access, opts.Entry))
}

// Connect adds a dataflow edge and returns its emit index on the source
// task (the argument for Context.Emit).
func (b *GraphBuilder) Connect(from, to TaskID, d Dispatch) int {
	return b.g.Connect(int(from), int(to), d)
}

// Validate checks the graph against the SDG structural rules without
// deploying it.
func (b *GraphBuilder) Validate() error { return b.g.Validate() }

// Dot renders the graph in Graphviz dot syntax.
func (b *GraphBuilder) Dot() string { return b.g.Dot() }

// Graph exposes the underlying core graph (advanced use).
func (b *GraphBuilder) Graph() *core.Graph { return b.g }

// Options configures a deployment.
type Options struct {
	// Partitions sets initial instance counts per SE name; TEs accessing
	// an SE always match its instance count.
	Partitions map[string]int
	// Checkpointing.
	Mode     CheckpointMode
	Interval time.Duration // checkpoint period (default 10s, as in the paper)
	Chunks   int           // checkpoint chunks = backup parallelism m (default 2)
	// DeltaCheckpoints enables incremental epochs for dictionary SEs:
	// after an instance's first full checkpoint, later epochs serialise
	// only the keys changed since the previous epoch (plus tombstones),
	// cutting failure-free checkpoint bytes by the churn ratio.
	DeltaCheckpoints bool
	// CompactEvery forces a fresh base checkpoint after this many
	// consecutive delta epochs (default 8).
	CompactEvery int
	// CompactRatio forces a fresh base once cumulative delta bytes exceed
	// this fraction of the base checkpoint's bytes (default 0.5).
	CompactRatio float64
	// CompressBase flate-compresses base (full) checkpoint chunks before
	// they reach the backup disks; delta chunks stay raw.
	CompressBase bool
	// QueueLen bounds per-instance queues (default 1024).
	QueueLen int
	// OverflowLen is the flow-control watermark in items (default
	// 4 x QueueLen), applied per task element scaled by its live instance
	// count: a task whose summed parked overflow reaches
	// OverflowLen x instances is backpressured (revoking ingress credits
	// graph-wide until it drains or gains instances), and an entry task
	// whose backlog reaches the same bound stops admitting external items
	// per InjectPolicy. Internal edges never drop or block regardless.
	OverflowLen int
	// InjectPolicy selects ingress admission behaviour under overload:
	// InjectBlock (default) waits for capacity, InjectShed fails fast
	// with ErrOverloaded.
	InjectPolicy InjectPolicy
	// InjectDeadline bounds how long InjectBlock waits before giving up
	// with ErrOverloaded (0 = wait forever).
	InjectDeadline time.Duration
	// BatchSize sets the micro-batch target for the item hot path: workers
	// coalesce up to this many queued items per dispatch and emissions
	// buffer per edge until this many are pending. Batches flush on idle,
	// so a larger size amortises per-item overhead under load without
	// adding latency when the pipeline is drained. Default 1 preserves
	// per-item dispatch exactly.
	BatchSize int
	// DiskBandwidth models checkpoint disk speed in bytes/s (0 = infinite).
	DiskBandwidth int64
	// BackupNodes provisions this many checkpoint target nodes (default 2).
	BackupNodes int
	// KVShards backs dictionary SEs with the lock-striped sharded store:
	// > 0 sets the shard count (rounded up to a power of two), < 0 selects
	// a GOMAXPROCS-derived default, 0 keeps the single-lock KVMap.
	KVShards int
	// ScaleDrainTimeout bounds how long ScaleDown waits for the graph to
	// quiesce behind the ingress fence before failing with ErrNotQuiesced
	// (default 30s).
	ScaleDrainTimeout time.Duration
	// WireCheck round-trips every delivered payload through the wire codec,
	// verifying the location-independence restriction of the paper (§4.1):
	// a payload that could not cross a real process boundary fails loudly
	// instead of silently sharing memory. Recommended while developing a
	// graph destined for distributed deployment.
	WireCheck bool
}

// System is a deployed SDG.
type System struct {
	rt *runtime.Runtime
}

// Deploy validates, allocates and starts the graph.
func (b *GraphBuilder) Deploy(opts Options) (*System, error) {
	cl := cluster.New(0, cluster.Config{
		DiskWriteBW: opts.DiskBandwidth,
		DiskReadBW:  opts.DiskBandwidth,
	})
	rt, err := runtime.Deploy(b.g, runtime.Options{
		Cluster:           cl,
		QueueLen:          opts.QueueLen,
		OverflowLen:       opts.OverflowLen,
		InjectPolicy:      opts.InjectPolicy,
		InjectDeadline:    opts.InjectDeadline,
		BatchSize:         opts.BatchSize,
		Partitions:        opts.Partitions,
		Mode:              opts.Mode,
		Interval:          opts.Interval,
		Chunks:            opts.Chunks,
		BackupNodes:       opts.BackupNodes,
		KVShards:          opts.KVShards,
		DeltaCheckpoints:  opts.DeltaCheckpoints,
		CompactEvery:      opts.CompactEvery,
		CompactRatio:      opts.CompactRatio,
		CompressBase:      opts.CompressBase,
		ScaleDrainTimeout: opts.ScaleDrainTimeout,
		WireCheck:         opts.WireCheck,
	})
	if err != nil {
		return nil, err
	}
	return &System{rt: rt}, nil
}

// InjectPolicy selects ingress admission behaviour under overload.
type InjectPolicy = runtime.InjectPolicy

// Admission policies.
const (
	// InjectBlock waits for capacity (bounded by Options.InjectDeadline).
	InjectBlock = runtime.InjectBlock
	// InjectShed fails fast with ErrOverloaded instead of waiting.
	InjectShed = runtime.InjectShed
)

// ErrOverloaded is returned by Inject/InjectBatch/Call when admission
// control rejects the offered items (shed, deadline exceeded, or the target
// entry instance is down).
var ErrOverloaded = runtime.ErrOverloaded

// InjectItem is one externally offered item for InjectBatch.
type InjectItem = runtime.InjectItem

// Inject delivers a fire-and-forget item to an entry task.
func (s *System) Inject(task string, key uint64, value any) error {
	return s.rt.Inject(task, key, value)
}

// InjectBatch delivers a batch of fire-and-forget items to an entry task
// with one admission decision, one source-log append and one enqueue per
// destination instance. Admission is all-or-nothing per batch.
func (s *System) InjectBatch(task string, items []InjectItem) error {
	return s.rt.InjectBatch(task, items)
}

// Call injects a request and waits for a task to Reply, recording latency.
func (s *System) Call(task string, key uint64, value any, timeout time.Duration) (any, error) {
	return s.rt.Call(task, key, value, timeout)
}

// Drain blocks until all queues are empty or the timeout elapses.
func (s *System) Drain(timeout time.Duration) bool { return s.rt.Drain(timeout) }

// Checkpoint takes a manual checkpoint of one SE instance.
func (s *System) Checkpoint(seName string, instance int) error {
	_, err := s.rt.CheckpointNow(seName, instance)
	return err
}

// KillNode injects a node failure.
func (s *System) KillNode(node int) { s.rt.KillNode(node) }

// Recover restores the failed instance of an SE onto n fresh nodes.
func (s *System) Recover(seName string, n int) error {
	_, err := s.rt.Recover(seName, n)
	return err
}

// ScaleUp adds an instance to a task (and to its SE, following the state
// kind's semantics).
func (s *System) ScaleUp(task string) error { return s.rt.ScaleUp(task) }

// ScaleDown retires an instance of a task, draining it behind an ingress
// fence and merging its partitioned state into the surviving instances.
// Partial-state tasks are refused (replicas reconcile only through merge
// computation); it also fails with ErrNotQuiesced when the graph cannot
// drain within Options.ScaleDrainTimeout.
func (s *System) ScaleDown(task string) error { return s.rt.ScaleDown(task) }

// ScalePolicy tunes the auto-scaler: high/low water marks, cooldown,
// MinInstances/MaxInstances bounds and the shrink observation window.
type ScalePolicy = runtime.ScalePolicy

// AutoScale starts the reactive bottleneck/straggler controller with
// default policy (grow on sustained parked depth, shrink idle tasks back
// to one instance).
func (s *System) AutoScale(interval time.Duration) {
	s.rt.StartAutoScale(interval, runtime.ScalePolicy{})
}

// AutoScaleWithPolicy starts the controller with an explicit policy.
func (s *System) AutoScaleWithPolicy(interval time.Duration, p ScalePolicy) {
	s.rt.StartAutoScale(interval, p)
}

// ErrNotQuiesced is returned by ScaleDown when the graph's queues do not
// drain within the scale-in timeout.
var ErrNotQuiesced = runtime.ErrNotQuiesced

// Stats snapshots the live topology and counters.
func (s *System) Stats() runtime.Stats { return s.rt.Stats() }

// CallLatency exposes the request latency histogram.
func (s *System) CallLatency() *metrics.Histogram { return s.rt.CallLatency }

// Runtime exposes the underlying runtime (advanced use).
func (s *System) Runtime() *runtime.Runtime { return s.rt }

// Stop terminates the deployment.
func (s *System) Stop() { s.rt.Stop() }

// Ref is a convenience for building TaskOptions state references inline.
func Ref(id StateID) *StateID { return &id }
