package sdg_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/sdg"
)

func init() {
	wire.Register([]byte{})
}

const timeout = 5 * time.Second

func buildKV(t *testing.T) *sdg.GraphBuilder {
	t.Helper()
	b := sdg.NewGraph("kv")
	store := b.PartitionedState("store", sdg.StoreKVMap)
	// The sdg.KV assertion keeps the graph deployable with any dictionary
	// backend (see Options.KVShards).
	b.Task("put", func(ctx sdg.Context, it sdg.Item) {
		ctx.Store().(sdg.KV).Put(it.Key, it.Value.([]byte))
		ctx.Reply(true)
	}, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(store)})
	b.Task("get", func(ctx sdg.Context, it sdg.Item) {
		if v, ok := ctx.Store().(sdg.KV).Get(it.Key); ok {
			ctx.Reply(v)
			return
		}
		ctx.Reply(nil)
	}, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(store)})
	return b
}

// TestKVShardsFacade deploys the same graph over the lock-striped backend
// and checks the swap is invisible to the application.
func TestKVShardsFacade(t *testing.T) {
	sys, err := buildKV(t).Deploy(sdg.Options{
		Partitions: map[string]int{"store": 2},
		KVShards:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	for k := uint64(0); k < 32; k++ {
		if _, err := sys.Call("put", k, []byte{byte(k)}, timeout); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 32; k++ {
		v, err := sys.Call("get", k, nil, timeout)
		if err != nil || len(v.([]byte)) != 1 || v.([]byte)[0] != byte(k) {
			t.Fatalf("get %d = %v, %v", k, v, err)
		}
	}
	// The backend really is sharded underneath.
	st, err := sys.Runtime().StateStore("store", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*sdg.ShardedKVMap); !ok {
		t.Fatalf("store = %T, want *sdg.ShardedKVMap", st)
	}
}

func TestBuildValidateDeploy(t *testing.T) {
	b := buildKV(t)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Dot(), "store") {
		t.Error("dot output missing state")
	}
	sys, err := b.Deploy(sdg.Options{Partitions: map[string]int{"store": 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	if _, err := sys.Call("put", 7, []byte("x"), timeout); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Call("get", 7, nil, timeout)
	if err != nil || string(v.([]byte)) != "x" {
		t.Fatalf("get = %v, %v", v, err)
	}
	st := sys.Stats()
	if len(st.SEs) != 1 || st.SEs[0].Instances != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if sys.CallLatency().Count() != 2 {
		t.Error("latency histogram should have 2 samples")
	}
}

func TestPartialMergeFlow(t *testing.T) {
	b := sdg.NewGraph("partial")
	acc := b.PartialState("acc", sdg.StoreKVMap)
	b.Task("upd", func(ctx sdg.Context, it sdg.Item) {
		m := ctx.Store().(*sdg.KVMap)
		var n uint64
		if v, ok := m.Get(0); ok {
			n = uint64(v[0])
		}
		m.Put(0, []byte{byte(n + 1)})
	}, sdg.TaskOptions{Entry: true, LocalState: sdg.Ref(acc)})
	ask := b.Task("ask", func(ctx sdg.Context, it sdg.Item) {
		ctx.EmitReq(0, 0, nil)
	}, sdg.TaskOptions{Entry: true})
	read := b.Task("read", func(ctx sdg.Context, it sdg.Item) {
		m := ctx.Store().(*sdg.KVMap)
		var n uint64
		if v, ok := m.Get(0); ok {
			n = uint64(v[0])
		}
		ctx.EmitReq(0, 0, n)
	}, sdg.TaskOptions{GlobalState: sdg.Ref(acc)})
	merge := b.Task("merge", func(ctx sdg.Context, it sdg.Item) {
		var total uint64
		for _, v := range it.Value.(sdg.Collection) {
			total += v.(uint64)
		}
		ctx.Reply(total)
	}, sdg.TaskOptions{})
	b.Connect(ask, read, sdg.OneToAll)
	b.Connect(read, merge, sdg.AllToOne)

	sys, err := b.Deploy(sdg.Options{Partitions: map[string]int{"acc": 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	for i := 0; i < 10; i++ {
		if err := sys.Inject("upd", uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !sys.Drain(timeout) {
		t.Fatal("drain")
	}
	got, err := sys.Call("ask", 0, nil, timeout)
	if err != nil {
		t.Fatal(err)
	}
	if got.(uint64) != 10 {
		t.Fatalf("merged total = %d, want 10", got)
	}
}

func TestFaultToleranceThroughFacade(t *testing.T) {
	b := buildKV(t)
	sys, err := b.Deploy(sdg.Options{
		Mode:     sdg.FTAsync,
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	for k := uint64(0); k < 30; k++ {
		if _, err := sys.Call("put", k, []byte{byte(k)}, timeout); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Checkpoint("store", 0); err != nil {
		t.Fatal(err)
	}
	node := sys.Stats().SEs[0].Nodes[0]
	sys.KillNode(node)
	if err := sys.Recover("store", 1); err != nil {
		t.Fatal(err)
	}
	if !sys.Drain(timeout) {
		t.Fatal("drain")
	}
	for k := uint64(0); k < 30; k++ {
		v, err := sys.Call("get", k, nil, timeout)
		if err != nil || v == nil || v.([]byte)[0] != byte(k) {
			t.Fatalf("get %d after recovery = %v, %v", k, v, err)
		}
	}
}

func TestScaleUpThroughFacade(t *testing.T) {
	b := buildKV(t)
	sys, err := b.Deploy(sdg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	for k := uint64(0); k < 40; k++ {
		_, _ = sys.Call("put", k, []byte{1}, timeout)
	}
	if err := sys.ScaleUp("put"); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().SEs[0].Instances; got != 2 {
		t.Fatalf("instances after scale = %d", got)
	}
	for k := uint64(0); k < 40; k++ {
		v, err := sys.Call("get", k, nil, timeout)
		if err != nil || v == nil {
			t.Fatalf("get %d after repartition: %v %v", k, v, err)
		}
	}
}

func TestDeployInvalidGraphFails(t *testing.T) {
	b := sdg.NewGraph("bad")
	if _, err := b.Deploy(sdg.Options{}); err == nil {
		t.Fatal("empty graph must not deploy")
	}
}
