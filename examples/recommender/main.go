// Recommender: the paper's running example (Alg. 1, Fig. 1) — online
// collaborative filtering with a partitioned user-item matrix and a
// partial (replicated) co-occurrence matrix, serving fresh recommendations
// while ratings stream in.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/sdg"
)

type (
	ratingMsg   struct{ User, Item, Rating int }
	coUpdateMsg struct {
		Item int64
		Row  map[int64]float64
	}
	recReqMsg  struct{ User int }
	userVecMsg struct {
		Row map[int64]float64
	}
	partialRec map[int64]float64
)

func main() {
	b := sdg.NewGraph("cf")
	userItem := b.PartitionedState("userItem", sdg.StoreMatrix)
	coOcc := b.PartialState("coOcc", sdg.StoreMatrix)

	// addRating path: update the user's row, then bump co-occurrence
	// counts on one replica (partial state absorbs random-access updates).
	updateUserItem := b.Task("updateUserItem", func(ctx sdg.Context, it sdg.Item) {
		m := it.Value.(ratingMsg)
		ui := ctx.Store().(*sdg.Matrix)
		ui.Set(int64(m.User), int64(m.Item), float64(m.Rating))
		ctx.Emit(0, it.Key, coUpdateMsg{Item: int64(m.Item), Row: ui.RowVec(int64(m.User))})
	}, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(userItem)})

	updateCoOcc := b.Task("updateCoOcc", func(ctx sdg.Context, it sdg.Item) {
		m := it.Value.(coUpdateMsg)
		co := ctx.Store().(*sdg.Matrix)
		for i, r := range m.Row {
			if r > 0 && i != m.Item {
				co.Add(m.Item, i, 1)
				co.Add(i, m.Item, 1)
			}
		}
	}, sdg.TaskOptions{LocalState: sdg.Ref(coOcc)})

	// getRec path: read the user vector, multiply on every coOcc replica
	// (global access), merge the partial recommendation vectors.
	getUserVec := b.Task("getUserVec", func(ctx sdg.Context, it sdg.Item) {
		ui := ctx.Store().(*sdg.Matrix)
		ctx.EmitReq(0, it.Key, userVecMsg{Row: ui.RowVec(int64(it.Value.(recReqMsg).User))})
	}, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(userItem)})

	getRecVec := b.Task("getRecVec", func(ctx sdg.Context, it sdg.Item) {
		co := ctx.Store().(*sdg.Matrix)
		ctx.EmitReq(0, 0, partialRec(co.MulVec(it.Value.(userVecMsg).Row)))
	}, sdg.TaskOptions{GlobalState: sdg.Ref(coOcc)})

	merge := b.Task("merge", func(ctx sdg.Context, it sdg.Item) {
		rec := partialRec{}
		for _, p := range it.Value.(sdg.Collection) {
			for k, v := range p.(partialRec) {
				rec[k] += v
			}
		}
		ctx.Reply(rec)
	}, sdg.TaskOptions{})

	b.Connect(updateUserItem, updateCoOcc, sdg.OneToAny)
	b.Connect(getUserVec, getRecVec, sdg.OneToAll)
	b.Connect(getRecVec, merge, sdg.AllToOne)

	sys, err := b.Deploy(sdg.Options{
		Partitions: map[string]int{"userItem": 2, "coOcc": 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// Stream ratings: three users with overlapping tastes.
	ratings := []ratingMsg{
		{User: 1, Item: 100, Rating: 5}, {User: 1, Item: 101, Rating: 4},
		{User: 2, Item: 100, Rating: 5}, {User: 2, Item: 102, Rating: 5},
		{User: 3, Item: 101, Rating: 3}, {User: 3, Item: 103, Rating: 4},
		{User: 1, Item: 104, Rating: 2}, {User: 2, Item: 104, Rating: 4},
	}
	for _, r := range ratings {
		if err := sys.Inject("updateUserItem", uint64(r.User), r); err != nil {
			log.Fatal(err)
		}
	}
	sys.Drain(5 * time.Second)

	// Fresh recommendations for user 1: items co-rated with 100/101/104.
	got, err := sys.Call("getUserVec", 1, recReqMsg{User: 1}, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	rec := got.(partialRec)
	type scored struct {
		item  int64
		score float64
	}
	var ranked []scored
	for item, score := range rec {
		ranked = append(ranked, scored{item, score})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
	fmt.Println("recommendations for user 1 (item, co-occurrence score):")
	for _, s := range ranked {
		fmt.Printf("  item %d  score %.0f\n", s.item, s.score)
	}
	fmt.Printf("\nratings processed: %d; recommendation served with %d coOcc replicas merged\n",
		len(ratings), sys.Stats().SEs[1].Instances)
}
