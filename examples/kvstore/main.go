// KV store with failure recovery: builds a partitioned key/value store,
// takes an asynchronous dirty-state checkpoint, kills the node holding the
// state, recovers it 1-to-2 (one failed instance restored in parallel onto
// two new nodes) and shows that both pre- and post-checkpoint writes
// survive thanks to the replay of logged inputs.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/wire"
	"repro/sdg"
)

func init() {
	wire.Register([]byte{})
}

func main() {
	b := sdg.NewGraph("kv")
	store := b.PartitionedState("store", sdg.StoreKVMap)
	// Asserting the sdg.KV interface (not the concrete *sdg.KVMap) keeps
	// the task functions backend-neutral: Options.KVShards below swaps in
	// the lock-striped sharded store without touching this code.
	b.Task("put", func(ctx sdg.Context, it sdg.Item) {
		ctx.Store().(sdg.KV).Put(it.Key, it.Value.([]byte))
		ctx.Reply(true)
	}, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(store)})
	b.Task("get", func(ctx sdg.Context, it sdg.Item) {
		if v, ok := ctx.Store().(sdg.KV).Get(it.Key); ok {
			ctx.Reply(v)
			return
		}
		ctx.Reply(nil)
	}, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(store)})

	sys, err := b.Deploy(sdg.Options{
		Mode:          sdg.FTAsync,
		Interval:      time.Hour, // manual checkpoints for the demo
		Chunks:        2,
		DiskBandwidth: 64 << 20, // 64 MB/s simulated backup disks
		KVShards:      -1,       // lock-striped dictionary, per-core shards
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	const timeout = 10 * time.Second

	// Phase 1: load 500 keys, checkpoint.
	for k := uint64(0); k < 500; k++ {
		if _, err := sys.Call("put", k, []byte(fmt.Sprintf("pre-checkpoint-%d", k)), timeout); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Checkpoint("store", 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint committed: 500 keys, hash-partitioned chunks on 2 backup disks")

	// Phase 2: more writes that exist only in the replay log.
	for k := uint64(500); k < 600; k++ {
		if _, err := sys.Call("put", k, []byte(fmt.Sprintf("post-checkpoint-%d", k)), timeout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("100 more writes after the checkpoint (covered only by the replay log)")

	// Phase 3: kill the node hosting the store.
	node := sys.Stats().SEs[0].Nodes[0]
	sys.KillNode(node)
	fmt.Printf("killed node %d; store unreachable\n", node)
	if _, err := sys.Call("get", 1, nil, 200*time.Millisecond); err == nil {
		log.Fatal("expected reads to fail while the node is down")
	}

	// Phase 4: 1-to-2 recovery — the chunks are split and restored to two
	// fresh nodes in parallel, then the logged inputs replay.
	start := time.Now()
	if err := sys.Recover("store", 2); err != nil {
		log.Fatal(err)
	}
	sys.Drain(timeout)
	fmt.Printf("recovered 1-to-2 in %v\n", time.Since(start).Round(time.Millisecond))

	// Phase 5: verify every key, including post-checkpoint ones.
	for k := uint64(0); k < 600; k++ {
		want := fmt.Sprintf("pre-checkpoint-%d", k)
		if k >= 500 {
			want = fmt.Sprintf("post-checkpoint-%d", k)
		}
		v, err := sys.Call("get", k, nil, timeout)
		if err != nil || v == nil || string(v.([]byte)) != want {
			log.Fatalf("key %d lost or wrong after recovery: %v %v", k, v, err)
		}
	}
	st := sys.Stats()
	fmt.Printf("all 600 keys verified; store now has %d partitions on nodes %v\n",
		st.SEs[0].Instances, st.SEs[0].Nodes)
}
