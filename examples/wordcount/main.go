// Streaming wordcount over wall-clock windows: the paper's fine-grained
// state-update workload (§6.1, Fig. 8). Words stream through a stateless
// splitter into partitioned counting state; window rotation flushes
// per-window reports while the stream keeps flowing.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/apps/wordcount"
	"repro/internal/workload"
)

func main() {
	var windows atomic.Int64
	wc, err := wordcount.New(wordcount.Config{
		Window:     200 * time.Millisecond,
		Partitions: 2,
		OnReport: func(r wordcount.WindowReport) {
			windows.Add(1)
			fmt.Printf("  window %d closed: %d distinct words, %d total\n",
				r.Window, r.DistinctWords, r.TotalCount)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer wc.Stop()

	// Stream Zipf-distributed text for a second.
	gen := workload.NewTextGen(42, 1000)
	deadline := time.Now().Add(1 * time.Second)
	lines := 0
	for time.Now().Before(deadline) {
		if err := wc.Feed(gen.Line(8)); err != nil {
			log.Fatal(err)
		}
		lines++
		time.Sleep(500 * time.Microsecond) // ~2k lines/s offered
	}
	wc.Runtime().Drain(5 * time.Second)

	fmt.Printf("\nstreamed %d lines (%d words); head word %q counted %d times in the current window\n",
		lines, lines*8, "w00000", wc.Counts("w00000"))
	fmt.Printf("processed %d word updates across %d partitions; %d windows flushed\n",
		wc.Runtime().Processed("count"),
		wc.Runtime().StateInstances("counts"),
		windows.Load())
}
