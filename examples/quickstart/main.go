// Quickstart: a minimal stateful dataflow graph — a partitioned word
// counter fed by a stateless tokenizer — built with the public sdg API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"strings"
	"time"

	"repro/sdg"
)

// countMsg is the payload between the tokenizer and the counter.
type countMsg struct {
	Word string
}

func main() {
	// 1. Define the graph: one partitioned state element, two tasks.
	b := sdg.NewGraph("quickstart")
	counts := b.PartitionedState("counts", sdg.StoreKVMap)

	tokenize := b.Task("tokenize", func(ctx sdg.Context, it sdg.Item) {
		for _, w := range strings.Fields(it.Value.(string)) {
			ctx.Emit(0, hash(w), countMsg{Word: w})
		}
	}, sdg.TaskOptions{Entry: true})

	count := b.Task("count", func(ctx sdg.Context, it sdg.Item) {
		kv := ctx.Store().(sdg.KV)
		var n uint64
		if v, ok := kv.Get(it.Key); ok {
			n = uint64(v[0]) | uint64(v[1])<<8
		}
		n++
		kv.Put(it.Key, []byte{byte(n), byte(n >> 8)})
	}, sdg.TaskOptions{ByKeyState: sdg.Ref(counts)})

	_ = b.Task("lookup", func(ctx sdg.Context, it sdg.Item) {
		kv := ctx.Store().(sdg.KV)
		var n uint64
		if v, ok := kv.Get(it.Key); ok {
			n = uint64(v[0]) | uint64(v[1])<<8
		}
		ctx.Reply(n)
	}, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(counts)})

	// Partitioned dispatch routes each word to the partition owning it.
	b.Connect(tokenize, count, sdg.Partitioned)

	// 2. Deploy with two state partitions.
	sys, err := b.Deploy(sdg.Options{Partitions: map[string]int{"counts": 2}})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// 3. Feed data and query.
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog barks",
	}
	for _, line := range lines {
		if err := sys.Inject("tokenize", 0, line); err != nil {
			log.Fatal(err)
		}
	}
	sys.Drain(5 * time.Second)

	for _, w := range []string{"the", "quick", "dog", "cat"} {
		n, err := sys.Call("lookup", hash(w), nil, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("count(%-5s) = %d\n", w, n)
	}

	st := sys.Stats()
	fmt.Printf("\ndeployed on %d simulated nodes; %q has %d partitions holding %d words\n",
		st.Nodes, st.SEs[0].Name, st.SEs[0].Instances, st.SEs[0].Entries)
}

func hash(w string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(w))
	return h.Sum64()
}
