// PageRank: iterative computation through a cyclic SDG (§3.1: "cycles
// specify iterative computation"). Rank mass flows around a dataflow loop:
// the spread task accumulates contributions into partitioned rank state and
// re-emits damped contributions to the node's neighbours over the back
// edge, until the contribution falls below a threshold. No coordination is
// used — the algorithm converges from intermediate states, like the
// optimistic iterative algorithms the paper targets.
//
//	go run ./examples/pagerank
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/sdg"
)

type contribMsg struct {
	Node    int
	Contrib float64
}

const (
	nNodes  = 24
	outDeg  = 3
	damping = 0.85
	epsilon = 0.002
)

func main() {
	// A fixed random graph: every node links to outDeg others.
	rng := rand.New(rand.NewSource(7))
	links := make([][]int, nNodes)
	for n := range links {
		seen := map[int]bool{n: true}
		for len(links[n]) < outDeg {
			m := rng.Intn(nNodes)
			if !seen[m] {
				seen[m] = true
				links[n] = append(links[n], m)
			}
		}
	}

	b := sdg.NewGraph("pagerank")
	ranks := b.PartitionedState("ranks", sdg.StoreKVMap)

	spread := b.Task("spread", func(ctx sdg.Context, it sdg.Item) {
		msg := it.Value.(contribMsg)
		kv := ctx.Store().(sdg.KV)
		cur := 0.0
		if v, ok := kv.Get(it.Key); ok {
			cur = math.Float64frombits(binary.LittleEndian.Uint64(v))
		}
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, math.Float64bits(cur+msg.Contrib))
		kv.Put(it.Key, buf)
		// Damped propagation around the cycle until the mass is negligible.
		next := damping * msg.Contrib / float64(len(links[msg.Node]))
		if next < epsilon {
			return
		}
		for _, m := range links[msg.Node] {
			ctx.Emit(0, uint64(m), contribMsg{Node: m, Contrib: next})
		}
	}, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(ranks)})

	lookup := b.Task("lookup", func(ctx sdg.Context, it sdg.Item) {
		kv := ctx.Store().(sdg.KV)
		if v, ok := kv.Get(it.Key); ok {
			ctx.Reply(math.Float64frombits(binary.LittleEndian.Uint64(v)))
			return
		}
		ctx.Reply(0.0)
	}, sdg.TaskOptions{Entry: true, ByKeyState: sdg.Ref(ranks)})
	_ = lookup

	// The back edge makes the graph cyclic: contributions loop through the
	// same task until they decay away.
	b.Connect(spread, spread, sdg.Partitioned)

	sys, err := b.Deploy(sdg.Options{
		Partitions: map[string]int{"ranks": 2},
		QueueLen:   16384, // iterative fan-out needs queue headroom
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// Seed every node with rank mass 1-damping (the teleport term).
	for n := 0; n < nNodes; n++ {
		if err := sys.Inject("spread", uint64(n), contribMsg{Node: n, Contrib: 1 - damping}); err != nil {
			log.Fatal(err)
		}
	}
	if !sys.Drain(30 * time.Second) {
		log.Fatal("iteration did not converge in time")
	}

	type ranked struct {
		node int
		rank float64
	}
	var rs []ranked
	total := 0.0
	for n := 0; n < nNodes; n++ {
		v, err := sys.Call("lookup", uint64(n), nil, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		rs = append(rs, ranked{n, v.(float64)})
		total += v.(float64)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].rank > rs[j].rank })
	fmt.Println("top 5 pages by rank:")
	for _, r := range rs[:5] {
		fmt.Printf("  node %2d  rank %.4f\n", r.node, r.rank)
	}
	fmt.Printf("\ntotal rank mass %.3f over %d nodes (iterated via a cyclic SDG, %d contribution hops)\n",
		total, nNodes, sys.Stats().TEs[0].Processed)
}
