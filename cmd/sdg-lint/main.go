// Command sdg-lint runs the repository's static-invariant analyzers
// (internal/analysis: lockorder, wiresafe, borrowcopy, clockassert) over
// the given packages and exits non-zero if any finding survives
// //sdg:ignore suppression. CI runs it as a blocking gate between the
// format check and go vet.
//
// Usage:
//
//	sdg-lint [packages...]   # default ./...
//	sdg-lint -list           # describe the analyzers
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/anz"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdg-lint [-list] [packages...]\n\nruns the repo's static-invariant analyzers; see DESIGN.md \"Static invariants\".\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := anz.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := anz.NewLoader(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load()
	if err != nil {
		fatal(err)
	}
	diags, err := anz.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sdg-lint: %d finding(s); fix or //sdg:ignore <analyzer> -- <justification>\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdg-lint:", err)
	os.Exit(2)
}
