// Command sdg-bench regenerates the paper's evaluation tables and figures
// (Table 1 and Figures 5-13 of "Making State Explicit for Imperative Big
// Data Processing", USENIX ATC 2014) at laptop scale.
//
// Usage:
//
//	sdg-bench                 # run every experiment in paper order
//	sdg-bench -fig 6          # run one experiment (0 = Table 1)
//	sdg-bench -full           # longer measurement points, smoother numbers
//	sdg-bench -list           # list experiment identifiers
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig       = flag.String("fig", "", "experiment to run (0 and 5-13); empty = all")
		full      = flag.Bool("full", false, "use longer measurement points")
		list      = flag.Bool("list", false, "list experiment identifiers")
		point     = flag.Duration("point", 0, "override measurement duration per point")
		ckpt      = flag.Bool("ckpt-bench", false, "measure full vs delta checkpoint cost and exit")
		ckptOut   = flag.String("ckpt-out", "BENCH_checkpoint.json", "JSON output path for -ckpt-bench (empty = stdout table only)")
		ckptKeys  = flag.Int("ckpt-keys", 100_000, "store size in keys for -ckpt-bench")
		pipe      = flag.Bool("pipe-bench", false, "measure dataflow hot-path cost across micro-batch sizes and exit")
		pipeOut   = flag.String("pipe-out", "BENCH_throughput.json", "JSON output path for -pipe-bench (empty = stdout table only)")
		pipeItems = flag.Int("pipe-items", 20_000, "injected items per batch size for -pipe-bench")
		bp        = flag.Bool("bp-bench", false, "measure offered load vs goodput under bounded admission and exit")
		bpOut     = flag.String("bp-out", "BENCH_backpressure.json", "JSON output path for -bp-bench (empty = stdout table only)")
		bpItems   = flag.Int("bp-items", 6_000, "items offered at load 1.0x for -bp-bench")
		elastic   = flag.Bool("elastic-bench", false, "drive a load sawtooth against the auto-scaler (grow and shrink) and exit")
		elOut     = flag.String("elastic-out", "BENCH_elasticity.json", "JSON output path for -elastic-bench (empty = stdout table only)")
		elItems   = flag.Int("elastic-items", 2_000, "items per flood phase for -elastic-bench")
		elCycles  = flag.Int("elastic-cycles", 2, "sawtooth cycles for -elastic-bench")
		wireB     = flag.Bool("wire-bench", false, "measure gob vs flat wire codec cost (bytes, allocs, ns per message) and exit")
		wireOut   = flag.String("wire-out", "BENCH_wire.json", "JSON output path for -wire-bench (empty = stdout table only)")
		wireIters = flag.Int("wire-iters", 2_000, "codec round trips per scenario for -wire-bench")
		distEdge  = flag.Bool("distedge-bench", false, "measure cross-worker edge throughput and wire cost (local and TCP transports) and exit")
		distOut   = flag.String("distedge-out", "BENCH_distedge.json", "JSON output path for -distedge-bench (empty = stdout table only)")
		distItems = flag.Int("distedge-items", 20_000, "items injected per transport variant for -distedge-bench")
		snapB     = flag.Bool("snap-bench", false, "measure streamed vs monolithic snapshot transfer (chunks, frame sizes, coordinator buffering) and exit")
		snapOut   = flag.String("snap-out", "BENCH_snapshot.json", "JSON output path for -snap-bench (empty = stdout table only)")
		snapKeys  = flag.Int("snap-keys", 20_000, "store size in keys for -snap-bench")
		ledger    = flag.String("ledger", "", "update this rolling perf ledger from the BENCH_*.json records in -ledger-dir and exit")
		ledgerPR  = flag.Int("ledger-pr", 0, "PR number the ledger entry records (required with -ledger)")
		ledgerDir = flag.String("ledger-dir", ".", "directory holding the BENCH_*.json records -ledger folds in")
	)
	flag.Parse()

	if *ledger != "" {
		if *ledgerPR <= 0 {
			fmt.Fprintln(os.Stderr, "sdg-bench: -ledger requires -ledger-pr")
			os.Exit(2)
		}
		if err := experiments.UpdateLedger(*ledger, *ledgerPR, *ledgerDir); err != nil {
			fmt.Fprintln(os.Stderr, "sdg-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("ledger %s: recorded PR %d\n", *ledger, *ledgerPR)
		return
	}

	if *wireB {
		err := experiments.WriteWireBench(os.Stdout,
			experiments.WireBenchConfig{Iters: *wireIters}, *wireOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdg-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *distEdge {
		err := experiments.WriteDistEdgeBench(os.Stdout,
			experiments.DistEdgeBenchConfig{Items: *distItems}, *distOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdg-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *snapB {
		err := experiments.WriteSnapBench(os.Stdout,
			experiments.SnapBenchConfig{Keys: *snapKeys}, *snapOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdg-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *ckpt {
		err := experiments.WriteCheckpointBench(os.Stdout,
			experiments.CheckpointBenchConfig{Keys: *ckptKeys}, *ckptOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdg-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *pipe {
		err := experiments.WritePipeBench(os.Stdout,
			experiments.PipeBenchConfig{Items: *pipeItems}, *pipeOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdg-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *bp {
		err := experiments.WriteBPBench(os.Stdout,
			experiments.BPBenchConfig{Items: *bpItems}, *bpOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdg-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *elastic {
		err := experiments.WriteElasticBench(os.Stdout,
			experiments.ElasticBenchConfig{Items: *elItems, Cycles: *elCycles}, *elOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdg-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("experiments (paper identifiers):")
		fmt.Println("  0   Table 1: design-space taxonomy")
		fmt.Println("  5   CF throughput/latency vs read-write ratio")
		fmt.Println("  6   KV vs Naiad baselines, state-size sweep")
		fmt.Println("  7   KV multi-node scaling")
		fmt.Println("  8   streaming wordcount window sweep")
		fmt.Println("  9   batch logistic regression scalability")
		fmt.Println("  10  straggler mitigation timeline")
		fmt.Println("  11  m-to-n recovery strategies")
		fmt.Println("  12  sync vs async checkpointing")
		fmt.Println("  13  checkpoint frequency/size vs latency")
		return
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	if *point > 0 {
		scale.PointDuration = *point
	}

	runner := &experiments.Runner{Scale: scale, Out: os.Stdout}
	start := time.Now()
	var err error
	if *fig == "" {
		err = runner.RunAll()
	} else {
		err = runner.Run(*fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdg-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}
