// Command sdg-kv serves the SDG key/value store over TCP, demonstrating
// the library behind a real network protocol. The wire format is
// length-prefixed frames carrying a 1-byte opcode:
//
//	0x01 PUT  key(8 bytes BE) value(rest)   -> 0x00 OK
//	0x02 GET  key(8 bytes BE)               -> 0x00 value | 0x01 not found
//	0x03 DEL  key(8 bytes BE)               -> 0x00 was-present(1 byte)
//
// Usage:
//
//	sdg-kv -listen 127.0.0.1:7070 -partitions 4
//	sdg-kv -demo            # start a server, run a scripted client, exit
//
// With -workers, the process runs as a distributed coordinator instead of
// hosting the store itself: the graph is deployed to the listed sdg-worker
// processes, requests route to workers by key, and checkpointing pulls
// worker snapshots over the wire on the -checkpoint interval:
//
//	sdg-worker -listen 127.0.0.1:7071 &
//	sdg-worker -listen 127.0.0.1:7072 &
//	sdg-kv -listen 127.0.0.1:7070 -workers 127.0.0.1:7071,127.0.0.1:7072
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/apps/kv"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/runtime"
)

const (
	opPut = 0x01
	opGet = 0x02
	opDel = 0x03

	respOK       = 0x00
	respNotFound = 0x01
	respError    = 0xff
)

// kvStore is the opcode handler's view of the kv deployment: either an
// in-process runtime (kv.KV) or a coordinator fronting remote workers.
type kvStore interface {
	Put(key uint64, value []byte, timeout time.Duration) error
	Get(key uint64, timeout time.Duration) ([]byte, error)
	Delete(key uint64, timeout time.Duration) (bool, error)
}

// distStore adapts a Coordinator to the store interface.
type distStore struct {
	coord *runtime.Coordinator
}

func (d *distStore) Put(key uint64, value []byte, timeout time.Duration) error {
	_, err := d.coord.Call("put", key, value, timeout)
	return err
}

func (d *distStore) Get(key uint64, timeout time.Duration) ([]byte, error) {
	v, err := d.coord.Call("get", key, nil, timeout)
	if err != nil || v == nil {
		return nil, err
	}
	return v.([]byte), nil
}

func (d *distStore) Delete(key uint64, timeout time.Duration) (bool, error) {
	v, err := d.coord.Call("delete", key, nil, timeout)
	if err != nil {
		return false, err
	}
	return v.(bool), nil
}

// newCoordinator dials every worker (one data and one control connection
// each) and deploys the kv graph across them.
func newCoordinator(workers string, partitions, shards, batch, snapChunk int, interval time.Duration) (*runtime.Coordinator, error) {
	var eps []runtime.WorkerEndpoint
	dial := func(addr string, timeout time.Duration) (*cluster.Client, error) {
		c, err := cluster.Dial(addr)
		if err != nil {
			return nil, err
		}
		c.SetCallTimeout(timeout)
		return c, nil
	}
	for _, addr := range strings.Split(workers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		data, err := dial(addr, 30*time.Second)
		if err != nil {
			return nil, fmt.Errorf("worker %s: %w", addr, err)
		}
		ctrl, err := dial(addr, 5*time.Second)
		if err != nil {
			data.Close()
			return nil, fmt.Errorf("worker %s: %w", addr, err)
		}
		// Addr lets peer workers dial each other directly for any cut
		// dataflow edges; the kv graph has none today, but the coordinator
		// needs the addresses on file before it can place edged graphs.
		eps = append(eps, runtime.WorkerEndpoint{Addr: addr, Data: data, Control: ctrl})
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("-workers lists no addresses")
	}
	coord, err := runtime.NewCoordinator("kv", eps, runtime.CoordOptions{
		Partitions:     map[string]int{"store": partitions},
		KVShards:       shards,
		BatchSize:      batch,
		SnapChunkBytes: snapChunk,
		OnFailure: func(w int) {
			fmt.Fprintf(os.Stderr, "sdg-kv: worker %d failed; its keys queue for replay until recovery\n", w)
		},
	})
	if err != nil {
		return nil, err
	}
	if interval > 0 {
		go func() {
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for range ticker.C {
				if err := coord.Checkpoint(); err != nil {
					fmt.Fprintln(os.Stderr, "sdg-kv: checkpoint:", err)
				}
			}
		}()
	}
	return coord, nil
}

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:7070", "TCP listen address")
		partitions   = flag.Int("partitions", 2, "store partitions (with -workers: the global total, sharded across workers)")
		shards       = flag.Int("shards", -1, "lock stripes per store partition (-1 = per-core default, 0 = single lock)")
		batch        = flag.Int("batch", 1, "micro-batch target for the item hot path (1 = per-item dispatch)")
		injectPolicy = flag.String("inject-policy", "block", "ingress admission policy under overload: block | shed")
		injectDL     = flag.Duration("inject-deadline", 0, "max time block admission waits before shedding (0 = forever)")
		overflowLen  = flag.Int("overflow-len", 0, "flow-control watermark in items (0 = 4 x queue length)")
		autoscale    = flag.Duration("autoscale", 0, "auto-scaler scan interval (0 = off): grows bottlenecked tasks and retires idle instances")
		minInst      = flag.Int("min-instances", 1, "auto-scaler shrink floor per task")
		maxInst      = flag.Int("max-instances", 16, "auto-scaler growth bound per task")
		highWater    = flag.Int("scale-high-water", 0, "parked-depth bottleneck threshold in items (0 = half the queue length)")
		lowWater     = flag.Int("scale-low-water", 0, "backlog at or below this is idle; sustained idleness scales the task back in")
		ftInterval   = flag.Duration("checkpoint", 10*time.Second, "checkpoint interval (0 = off)")
		delta        = flag.Bool("delta", true, "incremental (delta) checkpoints: serialise only keys changed since the last epoch")
		compactEvery = flag.Int("compact-every", 0, "force a full base checkpoint after this many deltas (0 = default 8)")
		compactRatio = flag.Float64("compact-ratio", 0, "force a full base once delta bytes exceed this fraction of base bytes (0 = default 0.5)")
		compressBase = flag.Bool("compress-base", false, "flate-compress base checkpoint chunks before they reach the backup disks (deltas stay raw)")
		workers      = flag.String("workers", "", "comma-separated sdg-worker addresses; when set, run as a distributed coordinator instead of hosting the store in-process")
		snapChunk    = flag.Int("snap-chunk-bytes", 0, "max encoded bytes per streamed snapshot chunk pulled from workers (0 = 1 MiB default)")
		demo         = flag.Bool("demo", false, "run a scripted demo client and exit")
	)
	flag.Parse()

	var st kvStore
	var banner string
	if *workers != "" {
		coord, err := newCoordinator(*workers, *partitions, *shards, *batch, *snapChunk, *ftInterval)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdg-kv:", err)
			os.Exit(1)
		}
		defer coord.Close()
		st = &distStore{coord: coord}
		banner = fmt.Sprintf("coordinating %d-partition store across %d workers (checkpoint interval: %v)",
			*partitions, coord.Workers(), *ftInterval)
	} else {
		mode := checkpoint.ModeAsync
		if *ftInterval <= 0 {
			mode = checkpoint.ModeOff
			*ftInterval = time.Hour
		}
		var policy runtime.InjectPolicy
		switch *injectPolicy {
		case "block":
			policy = runtime.InjectBlock
		case "shed":
			policy = runtime.InjectShed
		default:
			fmt.Fprintf(os.Stderr, "sdg-kv: unknown -inject-policy %q (want block or shed)\n", *injectPolicy)
			os.Exit(2)
		}
		store, err := kv.New(kv.Config{
			Partitions: *partitions,
			Runtime: runtime.Options{
				Mode:             mode,
				Interval:         *ftInterval,
				KVShards:         *shards,
				BatchSize:        *batch,
				InjectPolicy:     policy,
				InjectDeadline:   *injectDL,
				OverflowLen:      *overflowLen,
				DeltaCheckpoints: *delta,
				CompactEvery:     *compactEvery,
				CompactRatio:     *compactRatio,
				CompressBase:     *compressBase,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdg-kv:", err)
			os.Exit(1)
		}
		defer store.Stop()

		if *autoscale > 0 {
			store.Runtime().StartAutoScale(*autoscale, runtime.ScalePolicy{
				MinInstances:   *minInst,
				MaxInstances:   *maxInst,
				QueueHighWater: *highWater,
				QueueLowWater:  *lowWater,
			})
		}
		st = store
		banner = fmt.Sprintf("serving %d-partition store (checkpointing: %v, delta: %v)",
			*partitions, mode, *delta && mode == checkpoint.ModeAsync)
	}

	srv, err := cluster.Serve(*listen, func(req []byte) ([]byte, error) {
		return handle(st, req), nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdg-kv:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("sdg-kv: %s on %s\n", banner, srv.Addr())

	if *demo {
		if err := runDemo(srv.Addr()); err != nil {
			fmt.Fprintln(os.Stderr, "sdg-kv demo:", err)
			os.Exit(1)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("sdg-kv: shutting down")
}

func handle(store kvStore, req []byte) []byte {
	if len(req) < 9 {
		return []byte{respError}
	}
	op := req[0]
	key := binary.BigEndian.Uint64(req[1:9])
	const timeout = 10 * time.Second
	switch op {
	case opPut:
		val := make([]byte, len(req)-9)
		copy(val, req[9:])
		if err := store.Put(key, val, timeout); err != nil {
			return []byte{respError}
		}
		return []byte{respOK}
	case opGet:
		val, err := store.Get(key, timeout)
		if err != nil {
			return []byte{respError}
		}
		if val == nil {
			return []byte{respNotFound}
		}
		return append([]byte{respOK}, val...)
	case opDel:
		present, err := store.Delete(key, timeout)
		if err != nil {
			return []byte{respError}
		}
		b := byte(0)
		if present {
			b = 1
		}
		return []byte{respOK, b}
	default:
		return []byte{respError}
	}
}

func runDemo(addr string) error {
	cl, err := cluster.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	put := func(key uint64, val string) error {
		req := make([]byte, 9+len(val))
		req[0] = opPut
		binary.BigEndian.PutUint64(req[1:9], key)
		copy(req[9:], val)
		resp, err := cl.Call(req)
		if err != nil {
			return err
		}
		if resp[0] != respOK {
			return fmt.Errorf("put %d failed: %x", key, resp[0])
		}
		return nil
	}
	get := func(key uint64) (string, bool, error) {
		req := make([]byte, 9)
		req[0] = opGet
		binary.BigEndian.PutUint64(req[1:9], key)
		resp, err := cl.Call(req)
		if err != nil {
			return "", false, err
		}
		if resp[0] == respNotFound {
			return "", false, nil
		}
		return string(resp[1:]), true, nil
	}

	for i := uint64(0); i < 100; i++ {
		if err := put(i, fmt.Sprintf("value-%d", i)); err != nil {
			return err
		}
	}
	for i := uint64(0); i < 100; i += 25 {
		v, ok, err := get(i)
		if err != nil {
			return err
		}
		fmt.Printf("  get %-3d -> %q (found=%v)\n", i, v, ok)
	}
	if _, ok, _ := get(999); ok {
		return fmt.Errorf("key 999 should be absent")
	}
	fmt.Println("sdg-kv demo: 100 puts + reads over TCP completed")
	return nil
}
