// Command sdgc is the java2sdg analog (§4 of the paper): it translates the
// built-in annotated example programs to stateful dataflow graphs and
// prints the analysis artefacts — generated TEs with their state accesses,
// dataflow edges with dispatch semantics and live variables, the node
// allocation, and optionally Graphviz dot output.
//
// Usage:
//
//	sdgc -program cf          # translate the collaborative filtering class
//	sdgc -program dict -dot   # translate and emit dot
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/state"
	"repro/internal/translator"
)

func main() {
	var (
		name = flag.String("program", "cf", "built-in program to translate: cf | dict")
		src  = flag.String("src", "", "annotated Go source file to translate instead")
		dot  = flag.Bool("dot", false, "emit Graphviz dot instead of the plan")
	)
	flag.Parse()

	var prog *translator.Program
	if *src != "" {
		data, err := os.ReadFile(*src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdgc:", err)
			os.Exit(1)
		}
		// Source programs may call the built-in merge functions by name.
		prog, err = translator.ParseGoProgram(strings.TrimSuffix(*src, ".go"), string(data), builtinMerges())
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdgc:", err)
			os.Exit(1)
		}
	} else {
		switch *name {
		case "cf":
			prog = cfProgram()
		case "dict":
			prog = dictProgram()
		default:
			fmt.Fprintf(os.Stderr, "sdgc: unknown program %q (known: cf, dict)\n", *name)
			os.Exit(1)
		}
	}

	plan, err := translator.Translate(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdgc:", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(plan.Graph.Dot())
		return
	}

	fmt.Printf("program %q -> SDG with %d TEs, %d SEs\n\n",
		prog.Name, len(plan.Graph.TEs), len(plan.Graph.SEs))
	fmt.Println("state elements:")
	for _, se := range plan.Graph.SEs {
		fmt.Printf("  %-12s %-12s %s\n", se.Name, se.Kind, se.Type)
	}
	fmt.Println("\ntask elements:")
	for _, te := range plan.TEs {
		access := "stateless"
		if te.Field != "" {
			access = fmt.Sprintf("%s (%s", te.Field, te.Mode)
			if te.KeyVar != "" {
				access += " by " + te.KeyVar
			}
			access += ")"
		}
		entry := " "
		if te.Entry {
			entry = "*"
		}
		live := te.LiveIn
		sort.Strings(live)
		fmt.Printf("  %s %-28s access=%-28s live-in={%s}\n",
			entry, te.Name, access, strings.Join(live, ","))
	}
	fmt.Println("\ndataflow edges:")
	for _, e := range plan.Edges {
		carries := e.Carries
		sort.Strings(carries)
		key := ""
		if e.KeyVar != "" {
			key = " key=" + e.KeyVar
		}
		fmt.Printf("  %-28s -> %-28s %-12s%s carries={%s}\n",
			e.From, e.To, e.Dispatch, key, strings.Join(carries, ","))
	}
	alloc := plan.Graph.Allocate()
	fmt.Printf("\nallocation: %d nodes\n", alloc.Nodes)
	for n := 0; n < alloc.Nodes; n++ {
		var parts []string
		for _, se := range alloc.SEsOnNode(n) {
			parts = append(parts, "SE:"+plan.Graph.SEs[se].Name)
		}
		for _, te := range alloc.TEsOnNode(n) {
			parts = append(parts, plan.Graph.TEs[te].Name)
		}
		fmt.Printf("  n%d: %s\n", n+1, strings.Join(parts, ", "))
	}
}

// builtinMerges is the merge registry available to -src programs.
func builtinMerges() map[string]func([]any) any {
	return map[string]func([]any) any{
		"sumVectors": func(parts []any) any {
			rec := map[int64]float64{}
			for _, p := range parts {
				if m, ok := p.(map[int64]float64); ok {
					for k, v := range m {
						rec[k] += v
					}
				}
			}
			return rec
		},
		"sum": func(parts []any) any {
			total := 0.0
			for _, p := range parts {
				if f, ok := p.(float64); ok {
					total += f
				}
			}
			return total
		},
	}
}

// cfProgram is Alg. 1 from the paper in the translator IR.
func cfProgram() *translator.Program {
	return &translator.Program{
		Name: "cf",
		Fields: []translator.Field{
			{Name: "userItem", Type: state.TypeMatrix, Ann: translator.AnnPartitioned},
			{Name: "coOcc", Type: state.TypeMatrix, Ann: translator.AnnPartial},
		},
		MergeFuncs: map[string]func([]any) any{
			"sumVectors": func(parts []any) any {
				rec := map[int64]float64{}
				for _, p := range parts {
					if m, ok := p.(map[int64]float64); ok {
						for k, v := range m {
							rec[k] += v
						}
					}
				}
				return rec
			},
		},
		Methods: []*translator.Method{
			{
				Name:   "addRating",
				Params: []string{"user", "item", "rating"},
				Body: []translator.Stmt{
					translator.StateUpdate{Field: "userItem", Op: "set",
						Args: []translator.Expr{translator.Var{Name: "user"}, translator.Var{Name: "item"}, translator.Var{Name: "rating"}}},
					translator.Assign{Var: "userRow", Expr: translator.StateRead{Field: "userItem", Op: "row",
						Args: []translator.Expr{translator.Var{Name: "user"}}}},
					translator.ForEach{KeyVar: "i", ValVar: "r", Over: translator.Var{Name: "userRow"}, Body: []translator.Stmt{
						translator.If{Cond: translator.BinOp{Op: ">", L: translator.Var{Name: "r"}, R: translator.Const{Value: 0.0}}, Then: []translator.Stmt{
							translator.If{Cond: translator.BinOp{Op: "!=", L: translator.Var{Name: "i"}, R: translator.Var{Name: "item"}}, Then: []translator.Stmt{
								translator.StateUpdate{Field: "coOcc", Op: "add",
									Args: []translator.Expr{translator.Var{Name: "item"}, translator.Var{Name: "i"}, translator.Const{Value: 1.0}}},
								translator.StateUpdate{Field: "coOcc", Op: "add",
									Args: []translator.Expr{translator.Var{Name: "i"}, translator.Var{Name: "item"}, translator.Const{Value: 1.0}}},
							}},
						}},
					}},
				},
			},
			{
				Name:   "getRec",
				Params: []string{"user"},
				Body: []translator.Stmt{
					translator.Assign{Var: "userRow", Expr: translator.StateRead{Field: "userItem", Op: "row",
						Args: []translator.Expr{translator.Var{Name: "user"}}}},
					translator.Assign{Var: "userRec", Partial: true,
						Expr: translator.StateRead{Field: "coOcc", Op: "mulvec",
							Args: []translator.Expr{translator.Var{Name: "userRow"}}, Global: true}},
					translator.Assign{Var: "rec", Expr: translator.MergeCall{Func: "sumVectors", Arg: translator.Var{Name: "userRec"}}},
					translator.Return{Expr: translator.Var{Name: "rec"}},
				},
			},
		},
	}
}

// dictProgram is a minimal partitioned dictionary class.
func dictProgram() *translator.Program {
	return &translator.Program{
		Name: "dict",
		Fields: []translator.Field{
			{Name: "store", Type: state.TypeKVMap, Ann: translator.AnnPartitioned},
		},
		Methods: []*translator.Method{
			{
				Name: "put", Params: []string{"k", "v"},
				Body: []translator.Stmt{
					translator.StateUpdate{Field: "store", Op: "put",
						Args: []translator.Expr{translator.Var{Name: "k"}, translator.Var{Name: "v"}}},
					translator.Return{Expr: translator.Const{Value: true}},
				},
			},
			{
				Name: "get", Params: []string{"k"},
				Body: []translator.Stmt{
					translator.Assign{Var: "v", Expr: translator.StateRead{Field: "store", Op: "get",
						Args: []translator.Expr{translator.Var{Name: "k"}}}},
					translator.Return{Expr: translator.Var{Name: "v"}},
				},
			},
		},
	}
}
