// Alg. 1 of the paper as annotated Go source, consumable by
// `sdgc -src cmd/sdgc/testdata/cf.go`. testdata is excluded from builds;
// Matrix and the merge functions are resolved by the translator.
package cf

//sdg:state partitioned
var userItem Matrix

//sdg:state partial
var coOcc Matrix

func addRating(user, item, rating int) {
	userItem.Set(user, item, rating)
	userRow := userItem.Row(user)
	for i, r := range userRow {
		if r > 0 {
			if i != item {
				coOcc.Add(item, i, 1)
				coOcc.Add(i, item, 1)
			}
		}
	}
}

func getRec(user int) {
	userRow := userItem.Row(user)
	//sdg:partial
	userRec := coOcc.GlobalMulvec(userRow)
	rec := sumVectors(userRec)
	return rec
}
