// Command sdg-worker hosts one process's slice of a distributed SDG
// deployment: it serves the coordinator wire protocol over TCP and runs
// whatever graph the coordinator deploys to it. Graphs travel by registry
// name, so this binary links every application package; a deployment is
// coordinator-driven end to end — the worker takes no graph flags.
//
// Usage:
//
//	sdg-worker -listen 127.0.0.1:7070
//
// The resolved listen address is announced on stdout as
// "sdg-worker: listening on <addr>" (with -listen :0, this is how a
// supervisor learns the port). The process exits when the coordinator sends
// Stop, or on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/runtime"

	// Each application package registers its graph builder from init.
	_ "repro/internal/apps/counter"
	_ "repro/internal/apps/kv"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP address to serve the worker wire protocol on (use :0 for an ephemeral port)")
	flag.Parse()

	w := runtime.NewWorker()
	srv, err := cluster.Serve(*listen, w.Handler())
	if err != nil {
		log.Fatalf("sdg-worker: %v", err)
	}
	fmt.Printf("sdg-worker: listening on %s (graphs: %s)\n", srv.Addr(), strings.Join(runtime.RegisteredGraphs(), ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-w.Done():
	case <-sig:
	}
	w.Close()
	srv.Close()
}
